package serving

import (
	"testing"
	"time"
)

// testClock is an injectable clock for breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != CircuitClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker rejected a request after %d failures", i+1)
		}
	}
	b.Failure()
	if got := b.State(); got != CircuitOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != CircuitClosed {
		t.Fatalf("interleaved successes: state %v, want closed (streak must reset)", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if got := b.State(); got != CircuitOpen {
		t.Fatalf("state %v, want open", got)
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted before the cooldown elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker denied the half-open probe after cooldown")
	}
	if got := b.State(); got != CircuitHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if got := b.State(); got != CircuitClosed {
		t.Fatalf("after probe success: state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker rejected a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker denied the half-open probe")
	}
	b.Failure()
	if got := b.State(); got != CircuitOpen {
		t.Fatalf("after probe failure: state %v, want open", got)
	}
	// The cooldown restarted at the probe failure, not the original trip.
	clk.advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted before the restarted cooldown elapsed")
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker denied the probe after the restarted cooldown")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != 500*time.Millisecond {
		t.Fatalf("defaults: threshold=%d cooldown=%v, want 3/500ms", b.threshold, b.cooldown)
	}
}

func TestCircuitStateString(t *testing.T) {
	cases := map[CircuitState]string{
		CircuitClosed:   "closed",
		CircuitHalfOpen: "half-open",
		CircuitOpen:     "open",
		CircuitState(9): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("CircuitState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
