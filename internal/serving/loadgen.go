package serving

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// Rate is the arrival rate in requests per second (required > 0). The
	// generator is open-loop: arrivals are scheduled on the wall clock at
	// fixed spacing regardless of completions, so a slow or shedding server
	// accumulates in-flight requests instead of silently throttling the
	// offered load (the closed-loop coordination-omission trap).
	Rate float64
	// Duration bounds the run (required > 0).
	Duration time.Duration
	// Batch is the queries per request (0 = 1).
	Batch int
	// MaxInFlight caps concurrently outstanding requests as a generator
	// self-protection only (0 = 4096); an arrival past the cap is counted
	// as a drop, never silently delayed.
	MaxInFlight int
}

// LoadResult is one load run's measurement. Latency percentiles are
// measured from each request's *scheduled* arrival time, so queueing delay
// from a saturated tier is charged to the server, not hidden.
type LoadResult struct {
	Sent, Completed, Errors, Drops int64
	// Outcome counts, summed from per-request results: replies served
	// degraded (replica fallback tier), by the router's local fallback,
	// after a retry, and after a hedge.
	Degraded, Fallback, Retried, Hedged int64
	// Latency quantiles over completed requests.
	P50, P99, P999, Max time.Duration
	// AchievedRate is completed requests per second of wall time.
	AchievedRate float64
	Elapsed      time.Duration
}

// Target is the request sink RunLoad drives — Router.Estimate, or a stub
// in tests.
type Target func(ctx context.Context, qs [][]float64, taus []float64) (*Result, error)

// RunLoad drives target with an open-loop arrival process: one request
// every 1/Rate seconds for Duration, each picking its queries round-robin
// from the supplied pool. It returns the latency distribution and outcome
// counts; it never fails the run on request errors (they are counted).
func RunLoad(ctx context.Context, target Target, queries [][]float64, taus []float64, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serving: load rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("serving: load duration must be positive, got %v", cfg.Duration)
	}
	if len(queries) == 0 || len(queries) != len(taus) {
		return nil, fmt.Errorf("serving: %d queries but %d taus", len(queries), len(taus))
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	maxInFlight := int64(cfg.MaxInFlight)
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}

	res := &LoadResult{}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
		inflight  atomic.Int64
	)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	for i := 0; ; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if scheduled.After(deadline) || ctx.Err() != nil {
			break
		}
		if d := time.Until(scheduled); d > 0 {
			if !sleepCtx(ctx, d) {
				break
			}
		}
		if inflight.Load() >= maxInFlight {
			atomic.AddInt64(&res.Drops, 1)
			continue
		}
		// Assemble the request's batch round-robin over the pool.
		qs := make([][]float64, batch)
		ts := make([]float64, batch)
		for j := 0; j < batch; j++ {
			k := (i*batch + j) % len(queries)
			qs[j], ts[j] = queries[k], taus[k]
		}
		atomic.AddInt64(&res.Sent, 1)
		inflight.Add(1)
		wg.Add(1)
		go func(scheduled time.Time) {
			defer wg.Done()
			defer inflight.Add(-1)
			r, err := target(ctx, qs, ts)
			lat := time.Since(scheduled) // from scheduled arrival: queue delay included
			if err != nil {
				atomic.AddInt64(&res.Errors, 1)
				return
			}
			atomic.AddInt64(&res.Completed, 1)
			if r.Degraded {
				atomic.AddInt64(&res.Degraded, 1)
			}
			if r.Fallback {
				atomic.AddInt64(&res.Fallback, 1)
			}
			if r.Retried {
				atomic.AddInt64(&res.Retried, 1)
			}
			if r.Hedged {
				atomic.AddInt64(&res.Hedged, 1)
			}
			mu.Lock()
			latencies = append(latencies, lat)
			mu.Unlock()
		}(scheduled)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.AchievedRate = float64(res.Completed) / res.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.P50 = latencies[n/2]
		res.P99 = latencies[(n-1)*99/100]
		res.P999 = latencies[(n-1)*999/1000]
		res.Max = latencies[n-1]
	}
	return res, nil
}
