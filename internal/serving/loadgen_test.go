package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

var loadQueries = [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
var loadTaus = []float64{0.1, 0.2, 0.3}

func TestRunLoadValidation(t *testing.T) {
	ok := func(context.Context, [][]float64, []float64) (*Result, error) {
		return &Result{}, nil
	}
	cases := []struct {
		name string
		cfg  LoadConfig
		qs   [][]float64
		taus []float64
	}{
		{"zero rate", LoadConfig{Duration: time.Second}, loadQueries, loadTaus},
		{"zero duration", LoadConfig{Rate: 10}, loadQueries, loadTaus},
		{"empty pool", LoadConfig{Rate: 10, Duration: time.Second}, nil, nil},
		{"mismatched pool", LoadConfig{Rate: 10, Duration: time.Second}, loadQueries, loadTaus[:2]},
	}
	for _, tc := range cases {
		if _, err := RunLoad(context.Background(), ok, tc.qs, tc.taus, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunLoadCountsAndPercentiles(t *testing.T) {
	var calls atomic.Int64
	target := func(_ context.Context, qs [][]float64, taus []float64) (*Result, error) {
		calls.Add(1)
		if len(qs) != 2 || len(taus) != 2 {
			t.Errorf("batch %d/%d, want 2/2", len(qs), len(taus))
		}
		time.Sleep(time.Millisecond)
		return &Result{Estimates: []float64{1, 2}}, nil
	}
	res, err := RunLoad(context.Background(), target, loadQueries, loadTaus, LoadConfig{
		Rate: 200, Duration: 250 * time.Millisecond, Batch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 10 {
		t.Fatalf("Sent = %d, want >= 10 at 200/s over 250ms", res.Sent)
	}
	if res.Completed != res.Sent || res.Errors != 0 || res.Drops != 0 {
		t.Fatalf("result %+v, want all sent completed", res)
	}
	if res.Completed != calls.Load() {
		t.Fatalf("Completed %d != target calls %d", res.Completed, calls.Load())
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 || res.Max < res.P999 {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v p999=%v max=%v", res.P50, res.P99, res.P999, res.Max)
	}
	if res.AchievedRate <= 0 {
		t.Fatal("AchievedRate not computed")
	}
}

func TestRunLoadCountsErrorsAndOutcomes(t *testing.T) {
	var n atomic.Int64
	target := func(context.Context, [][]float64, []float64) (*Result, error) {
		switch n.Add(1) % 4 {
		case 0:
			return nil, errors.New("boom")
		case 1:
			return &Result{Degraded: true, Fallback: true}, nil
		case 2:
			return &Result{Retried: true, Hedged: true}, nil
		}
		return &Result{}, nil
	}
	res, err := RunLoad(context.Background(), target, loadQueries, loadTaus, LoadConfig{
		Rate: 400, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("error outcomes not counted")
	}
	if res.Degraded == 0 || res.Fallback == 0 || res.Retried == 0 || res.Hedged == 0 {
		t.Errorf("outcome tallies missing: %+v", res)
	}
	if res.Completed+res.Errors != res.Sent {
		t.Errorf("Completed %d + Errors %d != Sent %d", res.Completed, res.Errors, res.Sent)
	}
}

// TestRunLoadOpenLoopDropsOverCap pins the open-loop contract: when every
// request hangs, arrivals past MaxInFlight are counted as drops instead of
// silently throttling the offered rate.
func TestRunLoadOpenLoopDropsOverCap(t *testing.T) {
	release := make(chan struct{})
	target := func(ctx context.Context, _ [][]float64, _ []float64) (*Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &Result{}, nil
	}
	// Release the hung requests only after the arrival window has passed, so
	// every post-cap arrival is a drop; without it wg.Wait would hang.
	timer := time.AfterFunc(150*time.Millisecond, func() { close(release) })
	defer timer.Stop()
	res, err := RunLoad(context.Background(), target, loadQueries, loadTaus, LoadConfig{
		Rate: 1000, Duration: 100 * time.Millisecond, MaxInFlight: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 5 {
		t.Errorf("Sent = %d, want exactly MaxInFlight=5", res.Sent)
	}
	if res.Drops == 0 {
		t.Error("no drops counted despite a saturated in-flight cap")
	}
}

func TestRunLoadHonorsContextCancel(t *testing.T) {
	target := func(context.Context, [][]float64, []float64) (*Result, error) {
		return &Result{}, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunLoad(ctx, target, loadQueries, loadTaus, LoadConfig{
		Rate: 10, Duration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed > time.Second {
		t.Fatalf("canceled run took %v", res.Elapsed)
	}
}
