package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"simquery/cardest"
	"simquery/internal/faultinject"
	"simquery/internal/faulttol"
	"simquery/internal/reqtrace"
	"simquery/internal/telemetry"
)

// LoadFunc builds a freshly hardened estimator for POST /reload — in
// production cardest.Load on the checkpoint path followed by cardest.Harden
// with the replica's serving options (cmd/simserve wires exactly that);
// tests inject their own. It runs outside the request hot path and may be
// slow; the old generation keeps serving until the swap.
type LoadFunc func(path string) (*cardest.RobustEstimator, error)

// ReplicaConfig configures NewReplica. The zero value serves with a 1s
// default deadline and a 50ms advertised overload backoff.
type ReplicaConfig struct {
	// Name identifies the replica in responses, metrics, and logs.
	Name string
	// DefaultDeadline bounds requests that carry no deadline_ms of their
	// own (0 = 1s).
	DefaultDeadline time.Duration
	// RetryAfter is the backoff window advertised on 429 responses
	// (0 = 50ms).
	RetryAfter time.Duration
	// Loader serves POST /reload; nil disables reload (404).
	Loader LoadFunc
	// DrainTimeout bounds the post-swap wait for the old generation's
	// in-flight requests (0 = 5s). The swap itself is never delayed — the
	// wait only orders the reload response after the drain.
	DrainTimeout time.Duration
}

// Replica is one serving process: an HTTP server answering batch estimates
// from an atomically swappable hardened estimator. Endpoints:
//
//	POST /estimate  batch estimates (EstimateRequest → EstimateResponse)
//	GET  /healthz   liveness: 200 while the process accepts connections
//	GET  /readyz    readiness: 200 once a model generation is published
//	POST /reload    zero-downtime model swap ({"path": ...} → generation)
//
// All methods are safe for concurrent use.
type Replica struct {
	cfg ReplicaConfig
	rel *cardest.Reloadable

	lis      net.Listener
	srv      *http.Server
	mu       sync.Mutex // guards Start/Close/Kill transitions
	started  bool
	closed   bool
	killed   atomic.Bool
	inflight sync.WaitGroup

	reloads atomic.Int64
	served  atomic.Int64

	// adapter, when attached, serves POST /mutate and marks delta-corrected
	// answers with FlagAdapted. Late-bound: the adapter is built over this
	// replica's Reloadable after construction.
	adapter atomic.Pointer[cardest.Adapter]
}

// NewReplica builds a replica serving est (already hardened; the wrapper's
// gate, deadline, cache, and fallback apply per generation).
func NewReplica(est *cardest.RobustEstimator, cfg ReplicaConfig) *Replica {
	if cfg.Name == "" {
		cfg.Name = "replica"
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return &Replica{cfg: cfg, rel: cardest.NewReloadable(est)}
}

// Reloadable exposes the replica's generation holder (tests and embedding
// servers swap through it directly).
func (r *Replica) Reloadable() *cardest.Reloadable { return r.rel }

// AttachAdapter wires an adaptation coordinator (built over this replica's
// Reloadable) into the serving surface: POST /mutate applies mutation
// batches through it, and estimates served while mutations are pending
// carry FlagAdapted plus adapted:true in the response. Safe to call before
// or after Start; a nil adapter detaches.
func (r *Replica) AttachAdapter(a *cardest.Adapter) { r.adapter.Store(a) }

// Adapter returns the attached adaptation coordinator (nil when detached).
func (r *Replica) Adapter() *cardest.Adapter { return r.adapter.Load() }

// Name returns the replica's configured name.
func (r *Replica) Name() string { return r.cfg.Name }

// Served reports the number of /estimate requests answered (any status).
func (r *Replica) Served() int64 { return r.served.Load() }

// Reloads reports completed model swaps.
func (r *Replica) Reloads() int64 { return r.reloads.Load() }

// Start binds addr (e.g. "127.0.0.1:0") synchronously — a bad address
// fails here — and serves until Close or Kill.
func (r *Replica) Start(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("serving: replica %s already started", r.cfg.Name)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serving: replica %s listen %s: %w", r.cfg.Name, addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", r.handleEstimate)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	if r.cfg.Loader != nil {
		mux.HandleFunc("POST /reload", r.handleReload)
	}
	mux.HandleFunc("POST /mutate", r.handleMutate)
	r.lis = lis
	r.srv = &http.Server{Handler: mux}
	r.started = true
	go func() { _ = r.srv.Serve(lis) }()
	return nil
}

// Addr returns the bound address (useful with ":0").
func (r *Replica) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lis == nil {
		return ""
	}
	return r.lis.Addr().String()
}

// URL returns the replica's base URL.
func (r *Replica) URL() string { return "http://" + r.Addr() }

// Close shuts the replica down, closing the listener and in-flight
// connections. Idempotent.
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started || r.closed {
		return nil
	}
	r.closed = true
	return r.srv.Close()
}

// Kill simulates a crash: the listener and every in-flight connection
// close immediately, with no drain — clients see resets now and connection
// refused afterwards. The chaos suite triggers it through the
// serving.replica.kill injection point.
func (r *Replica) Kill() {
	r.killed.Store(true)
	_ = r.Close()
}

// Killed reports whether Kill ran.
func (r *Replica) Killed() bool { return r.killed.Load() }

// handleHealthz is liveness: the process is up and accepting connections.
func (r *Replica) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: a model generation is published and the
// replica is not mid-death. Reloads do not flip readiness — the old
// generation serves until the swap, the new one after it.
func (r *Replica) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if r.killed.Load() || r.rel.Estimator() == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// injectFaults runs the serving-tier injection points at the top of the
// estimate handler. It reports whether the request should be aborted
// without a response (connection reset); a triggered kill also shuts the
// replica down asynchronously.
func (r *Replica) injectFaults() (abort bool) {
	if !faultinject.Armed() {
		return false
	}
	faultinject.ReplicaStall.Fire() // sleep-only plans: slow, not failed
	if err := faulttol.Capture(func() error { faultinject.ReplicaKill.Fire(); return nil }); err != nil {
		go r.Kill()
		return true
	}
	if err := faulttol.Capture(func() error { faultinject.ConnReset.Fire(); return nil }); err != nil {
		return true
	}
	return false
}

// handleEstimate answers one batch estimate through the hardened path of
// the pinned model generation. Typed errors map onto HTTP statuses per
// WriteError; degraded answers are 200 with degraded:true.
func (r *Replica) handleEstimate(w http.ResponseWriter, req *http.Request) {
	if r.injectFaults() {
		// Abort with no status line: the client reads a reset/EOF. net/http
		// recognizes ErrAbortHandler and suppresses the stack trace.
		panic(http.ErrAbortHandler)
	}
	r.inflight.Add(1)
	defer r.inflight.Done()
	defer r.served.Add(1)

	var body EstimateRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		r.countOutcome("error")
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serving: bad request body: " + err.Error()})
		return
	}
	if err := body.Validate(); err != nil {
		r.countOutcome("error")
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	deadline := r.cfg.DefaultDeadline
	if body.DeadlineMs > 0 {
		deadline = time.Duration(body.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(req.Context(), deadline)
	defer cancel()

	est, gen, release := r.rel.Acquire()
	defer release()

	// A trace observes the hardened path's outcome flags (degraded, shed)
	// even when flight recording is off; when it is on, the sampled trace
	// lands in /debug/traces as usual.
	ctx, tr := reqtrace.StartRequest(ctx, est.Name(), body.Taus[0])
	if tr == nil {
		tr = reqtrace.NewDetached(est.Name(), body.Taus[0])
		ctx = reqtrace.NewContext(ctx, tr)
	}
	out, err := est.EstimateSearchBatchCtx(ctx, body.Queries, body.Taus)
	tr.SetOutcome(sum(out), err)
	if gen != r.rel.Generation() {
		tr.SetFlag(reqtrace.FlagReloaded)
	}
	adapted := false
	if a := r.adapter.Load(); a != nil && a.PendingDeltas() > 0 {
		adapted = true
		tr.SetFlag(reqtrace.FlagAdapted)
	}
	tr.Finish()
	if err != nil {
		switch {
		case errors.Is(err, cardest.ErrOverloaded):
			r.countOutcome("shed")
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			r.countOutcome("deadline")
		default:
			r.countOutcome("error")
		}
		WriteError(w, err, r.cfg.RetryAfter)
		return
	}
	degraded := tr.Flags()&reqtrace.FlagDegraded != 0
	if degraded {
		r.countOutcome("degraded")
	} else {
		r.countOutcome("ok")
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Estimates:  out,
		Degraded:   degraded,
		Adapted:    adapted,
		Generation: gen,
		Replica:    r.cfg.Name,
	})
}

// handleMutate applies one dataset mutation batch through the attached
// adapter: estimates served from this moment on are delta-corrected, every
// cached estimate is invalidated by the generation bump, and the probe
// snapshot goes stale so drift is scored against post-mutation truth.
func (r *Replica) handleMutate(w http.ResponseWriter, req *http.Request) {
	a := r.adapter.Load()
	if a == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "serving: adaptation disabled on this replica"})
		return
	}
	r.inflight.Add(1)
	defer r.inflight.Done()
	var body MutateRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serving: bad mutate body: " + err.Error()})
		return
	}
	if err := body.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	res, err := a.Mutate(body.Inserts, body.Deletes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Inserted:   res.Inserted,
		Deleted:    res.Deleted,
		Pending:    res.Pending,
		LiveSize:   res.LiveSize,
		Generation: res.Generation,
		Replica:    r.cfg.Name,
	})
}

// reloadRequest is the POST /reload body.
type reloadRequest struct {
	Path string `json:"path"`
}

// reloadResponse is the POST /reload success body.
type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Drained    bool   `json:"drained"`
}

// handleReload swaps in a freshly loaded estimator with zero downtime: the
// new generation is published atomically, in-flight requests finish against
// the one they pinned, and the response waits (bounded) for the old
// generation to drain. A load failure leaves the current generation
// serving untouched.
func (r *Replica) handleReload(w http.ResponseWriter, req *http.Request) {
	var body reloadRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serving: bad reload body: " + err.Error()})
		return
	}
	next, err := r.cfg.Loader(body.Path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "serving: reload: " + err.Error()})
		return
	}
	gen, old := r.rel.Swap(next)
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.DrainTimeout)
	defer cancel()
	drained := old.Wait(ctx) == nil
	r.reloads.Add(1)
	telemetry.Default().Count(telemetry.MetricServingReloads, 1)
	writeJSON(w, http.StatusOK, reloadResponse{Generation: gen, Drained: drained})
}

// countOutcome records one served request by outcome.
func (r *Replica) countOutcome(outcome string) {
	if rec := telemetry.Default(); rec.Enabled() {
		rec.CountLabeled(telemetry.MetricReplicaRequests, telemetry.LabelOutcome, outcome, 1)
	}
}

// sum folds a batch for the trace's scalar outcome slot.
func sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}
