package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"simquery/cardest"
)

func TestReplicaEstimateHappyPath(t *testing.T) {
	f := getFixture(t)
	rep := startReplica(t, newHardened(t, 21, cardest.ServeOptions{}), ReplicaConfig{Name: "alpha"})

	status, _, resp, _ := postEstimate(t, rep.URL(), EstimateRequest{
		Queries: f.queries[:3], Taus: f.taus[:3],
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if len(resp.Estimates) != 3 {
		t.Fatalf("%d estimates, want 3", len(resp.Estimates))
	}
	for i, v := range resp.Estimates {
		if v < 0 {
			t.Errorf("estimate %d = %v, want >= 0", i, v)
		}
	}
	if resp.Replica != "alpha" {
		t.Errorf("replica name %q, want alpha", resp.Replica)
	}
	if resp.Degraded {
		t.Error("healthy request reported degraded")
	}
	if rep.Served() != 1 {
		t.Errorf("Served() = %d, want 1", rep.Served())
	}
}

func TestReplicaRejectsMalformedRequests(t *testing.T) {
	rep := startReplica(t, newHardened(t, 22, cardest.ServeOptions{}), ReplicaConfig{})

	resp, err := http.Post(rep.URL()+"/estimate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}

	status, _, _, fail := postEstimate(t, rep.URL(), EstimateRequest{
		Queries: [][]float64{{1, 2}}, Taus: []float64{0.1, 0.2},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("mismatched taus: status %d, want 400", status)
	}
	if fail.Error == "" {
		t.Fatal("400 carried no error body")
	}

	// Wrong method on a valid route.
	getResp, err := http.Get(rep.URL() + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /estimate: status %d, want 405", getResp.StatusCode)
	}
}

func TestReplicaHealthAndReadiness(t *testing.T) {
	rep := startReplica(t, newHardened(t, 23, cardest.ServeOptions{}), ReplicaConfig{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(rep.URL() + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", ep, resp.StatusCode)
		}
	}
	// No Loader configured: reload is not routed.
	resp, err := http.Post(rep.URL()+"/reload", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /reload without Loader: status %d, want 404", resp.StatusCode)
	}
}

// TestReplicaShedsWith429 drives a one-slot replica past saturation and
// checks the overload contract: 429 plus both Retry-After headers, and the
// shed request never produces a wrong answer.
func TestReplicaShedsWith429(t *testing.T) {
	f := getFixture(t)
	slow := &slowEstimator{Estimator: newSampling(t, 24), delay: 150 * time.Millisecond}
	est := cardest.Harden(slow, cardest.ServeOptions{MaxInFlight: 1})
	rep := startReplica(t, est, ReplicaConfig{RetryAfter: 80 * time.Millisecond})

	hold := make(chan struct{})
	go func() {
		defer close(hold)
		postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[:1], Taus: f.taus[:1]})
	}()
	time.Sleep(30 * time.Millisecond) // let the holder occupy the slot

	status, hdr, _, fail := postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[1:2], Taus: f.taus[1:2]})
	<-hold
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", status)
	}
	if fail.Error == "" {
		t.Error("429 carried no error body")
	}
	if got := hdr.Get(RetryAfterMsHeader); got != "80" {
		t.Errorf("%s = %q, want 80", RetryAfterMsHeader, got)
	}
	if got := hdr.Get(RetryAfterHeader); got == "" {
		t.Error("429 missing Retry-After")
	} else if _, err := strconv.Atoi(got); err != nil {
		t.Errorf("Retry-After %q is not whole seconds", got)
	}
}

func TestReplicaDeadlineIs504(t *testing.T) {
	f := getFixture(t)
	slow := &slowEstimator{Estimator: newSampling(t, 25), delay: 120 * time.Millisecond}
	rep := startReplica(t, cardest.Harden(slow, cardest.ServeOptions{}), ReplicaConfig{})

	status, _, _, fail := postEstimate(t, rep.URL(), EstimateRequest{
		Queries: f.queries[:1], Taus: f.taus[:1], DeadlineMs: 20,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if fail.Error == "" {
		t.Error("504 carried no error body")
	}
}

// saveQESModel trains and checkpoints a serializable model for reload tests,
// returning the path — the production reload path (cardest.Load bumps
// ModelGeneration, so the swap publishes a fresh stamp).
func saveQESModel(t *testing.T, seed int64) string {
	t.Helper()
	f := getFixture(t)
	est, err := cardest.Train(f.ds, f.train, cardest.TrainOptions{Method: "qes", Epochs: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := cardest.Save(est, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func postReload(t *testing.T, baseURL, path string) (int, reloadResponse) {
	t.Helper()
	body, _ := json.Marshal(reloadRequest{Path: path})
	resp, err := http.Post(baseURL+"/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	defer resp.Body.Close()
	var rr reloadResponse
	_ = json.NewDecoder(resp.Body).Decode(&rr)
	return resp.StatusCode, rr
}

func TestReplicaReloadSwapsGeneration(t *testing.T) {
	f := getFixture(t)
	path := saveQESModel(t, 26)
	loader := func(p string) (*cardest.RobustEstimator, error) {
		e, err := cardest.Load(p, f.ds)
		if err != nil {
			return nil, err
		}
		return cardest.Harden(e, cardest.ServeOptions{}), nil
	}
	rep := startReplica(t, newHardened(t, 27, cardest.ServeOptions{}), ReplicaConfig{Loader: loader})

	_, _, before, _ := postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[:1], Taus: f.taus[:1]})

	status, rr := postReload(t, rep.URL(), path)
	if status != http.StatusOK {
		t.Fatalf("reload status %d, want 200", status)
	}
	if !rr.Drained {
		t.Error("idle replica failed to drain the old generation")
	}
	if rr.Generation <= before.Generation {
		t.Fatalf("reload generation %d not newer than %d", rr.Generation, before.Generation)
	}
	if rep.Reloads() != 1 {
		t.Errorf("Reloads() = %d, want 1", rep.Reloads())
	}

	status2, _, after, _ := postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[:1], Taus: f.taus[:1]})
	if status2 != http.StatusOK {
		t.Fatalf("post-reload estimate status %d, want 200", status2)
	}
	if after.Generation != rr.Generation {
		t.Errorf("post-reload answer from generation %d, want %d", after.Generation, rr.Generation)
	}
}

func TestReplicaReloadFailureKeepsServing(t *testing.T) {
	f := getFixture(t)
	loader := func(p string) (*cardest.RobustEstimator, error) {
		return nil, fmt.Errorf("no checkpoint at %s", p)
	}
	rep := startReplica(t, newHardened(t, 28, cardest.ServeOptions{}), ReplicaConfig{Loader: loader})

	_, _, before, _ := postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[:1], Taus: f.taus[:1]})
	status, _ := postReload(t, rep.URL(), "/nonexistent")
	if status != http.StatusInternalServerError {
		t.Fatalf("failed reload status %d, want 500", status)
	}
	status2, _, after, _ := postEstimate(t, rep.URL(), EstimateRequest{Queries: f.queries[:1], Taus: f.taus[:1]})
	if status2 != http.StatusOK {
		t.Fatalf("estimate after failed reload: status %d, want 200", status2)
	}
	if after.Generation != before.Generation {
		t.Errorf("failed reload changed the serving generation %d → %d", before.Generation, after.Generation)
	}
	if rep.Reloads() != 0 {
		t.Errorf("failed reload counted: Reloads() = %d, want 0", rep.Reloads())
	}
}

func TestReplicaStartTwiceFails(t *testing.T) {
	rep := startReplica(t, newHardened(t, 29, cardest.ServeOptions{}), ReplicaConfig{})
	if err := rep.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start succeeded")
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestReplicaConcurrentEstimates exercises the pin/release path under
// parallel load — a smoke test that the handler holds no lock across the
// model call.
func TestReplicaConcurrentEstimates(t *testing.T) {
	f := getFixture(t)
	rep := startReplica(t, newHardened(t, 30, cardest.ServeOptions{}), ReplicaConfig{})
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := i % len(f.queries)
			status, _, resp, _ := postEstimate(t, rep.URL(), EstimateRequest{
				Queries: f.queries[k : k+1], Taus: f.taus[k : k+1],
			})
			if status != http.StatusOK || len(resp.Estimates) != 1 {
				errs <- fmt.Sprintf("req %d: status %d, %d estimates", i, status, len(resp.Estimates))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
