package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"simquery/cardest"
	"simquery/internal/estcache"
	"simquery/internal/faulttol"
	"simquery/internal/reqtrace"
	"simquery/internal/telemetry"
)

// RouterOptions configures NewRouter. The zero value dispatches with a 1s
// deadline, 3 attempts, 2ms–100ms jittered backoff, p99-derived hedging
// with a 20ms cold-start floor, a 3-failure/500ms-cooldown breaker, and a
// 250ms health prober.
type RouterOptions struct {
	// Deadline bounds each logical request end to end, across every retry
	// and hedge (0 = 1s). Requests arriving with their own context deadline
	// keep it.
	Deadline time.Duration
	// MaxAttempts bounds dispatch attempts per request, the first included
	// (0 = 3).
	MaxAttempts int
	// BackoffBase/BackoffMax bound the jittered exponential retry backoff
	// (0 = 2ms/100ms).
	BackoffBase, BackoffMax time.Duration
	// HedgeFloor is the hedge delay used until enough latency samples exist
	// to derive a p99, and the lower bound afterwards (0 = 20ms).
	HedgeFloor time.Duration
	// DisableHedge turns hedged dispatch off (retry/backoff still apply).
	DisableHedge bool
	// BreakerThreshold and BreakerCooldown configure the per-replica
	// circuit breaker (0 = 3 consecutive failures, 500ms cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the background health-probe period; probes close
	// open circuits when a replica recovers (/readyz) and trip breakers on
	// dead replicas without burning a request (< 0 disables, 0 = 250ms).
	ProbeInterval time.Duration
	// Fallback, when set, answers requests locally after every replica
	// attempt fails — the paper's cheap sampling tier as the last rung of
	// the ladder. With a fallback, total replica loss degrades; without
	// one, it errors.
	Fallback cardest.Estimator
	// Seed makes backoff jitter replayable in chaos runs.
	Seed int64
}

// withDefaults fills zero values.
func (o RouterOptions) withDefaults() RouterOptions {
	if o.Deadline <= 0 {
		o.Deadline = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 20 * time.Millisecond
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	return o
}

// replicaClient is the router's per-replica state: transport, circuit
// breaker, and the overload cooling window advertised by 429 responses.
type replicaClient struct {
	name      string
	base      string
	hc        *http.Client
	breaker   *Breaker
	coolUntil atomic.Int64 // UnixNano until which 429 backoff applies
}

// cooling reports whether the replica is inside an advertised overload
// window.
func (rc *replicaClient) cooling(now time.Time) bool {
	return now.UnixNano() < rc.coolUntil.Load()
}

// success records a healthy response and publishes the circuit gauge.
func (rc *replicaClient) success() {
	rc.breaker.Success()
	rc.publishState()
}

// failure records a transport-level failure and publishes the circuit
// gauge.
func (rc *replicaClient) failure() {
	rc.breaker.Failure()
	rc.publishState()
}

func (rc *replicaClient) publishState() {
	if rec := telemetry.Default(); rec.Enabled() {
		rec.SetGaugeLabeled(telemetry.MetricServingCircuitState,
			telemetry.LabelReplica, rc.name, float64(rc.breaker.State()))
	}
}

// RouterStats is a snapshot of the router's dispatch counters.
type RouterStats struct {
	// Requests counts logical Estimate calls; OK, Degraded, Fallback, and
	// Errors partition their outcomes (Degraded = replica answered from its
	// fallback tier; Fallback = the router's local tier answered).
	Requests, OK, Degraded, Fallback, Errors int64
	// Retries counts re-dispatches, Hedges hedge copies launched, Shed 429
	// responses received from replicas.
	Retries, Hedges, Shed int64
}

// Router is the client-side dispatch layer over a replica set. All methods
// are safe for concurrent use.
type Router struct {
	reps    []*replicaClient
	opts    RouterOptions
	lat     *latencyTracker
	backoff *Backoff

	requests, ok, degraded, fellBack, failed atomic.Int64
	retries, hedges, shed                    atomic.Int64

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewRouter builds a router over the replica base URLs (e.g.
// "http://127.0.0.1:8451") and starts the background health prober.
func NewRouter(replicaURLs []string, opts RouterOptions) (*Router, error) {
	if len(replicaURLs) == 0 {
		return nil, errors.New("serving: router needs at least one replica")
	}
	opts = opts.withDefaults()
	r := &Router{
		opts:      opts,
		lat:       newLatencyTracker(128),
		backoff:   NewBackoff(opts.BackoffBase, opts.BackoffMax, opts.Seed),
		probeStop: make(chan struct{}),
	}
	for i, u := range replicaURLs {
		r.reps = append(r.reps, &replicaClient{
			name:    fmt.Sprintf("r%d", i),
			base:    u,
			hc:      &http.Client{},
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	if opts.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the health prober. In-flight Estimates finish normally.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.probeStop) })
	r.probeWG.Wait()
}

// Stats snapshots the dispatch counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests: r.requests.Load(), OK: r.ok.Load(), Degraded: r.degraded.Load(),
		Fallback: r.fellBack.Load(), Errors: r.failed.Load(),
		Retries: r.retries.Load(), Hedges: r.hedges.Load(), Shed: r.shed.Load(),
	}
}

// Replicas reports the replica names and circuit states (diagnostics).
func (r *Router) Replicas() map[string]CircuitState {
	out := make(map[string]CircuitState, len(r.reps))
	for _, rc := range r.reps {
		out[rc.name] = rc.breaker.State()
	}
	return out
}

// Result is one answered request.
type Result struct {
	Estimates []float64
	// Degraded: some estimate came from a fallback tier (the replica's or,
	// with Fallback below, the router's).
	Degraded bool
	// Fallback: the router's local tier answered after every replica
	// attempt failed.
	Fallback bool
	// Retried/Hedged: the dispatch path re-sent or hedged the request.
	Retried, Hedged bool
	// Generation and Replica identify the answering model (zero/"" for
	// router-fallback answers).
	Generation uint64
	Replica    string
}

// shardOf maps a query vector onto a preferred replica: the same
// fingerprint hash that keys the estimate cache, so repeated and jittered
// re-sends of a query land on the replica whose cache and locals are warm
// for it — the segment/local-model space sharded by query locality.
func (r *Router) shardOf(q []float64) int {
	h1, _ := estcache.Fingerprint(q)
	return int(h1 % uint64(len(r.reps)))
}

// Estimate answers one batch through the dispatch ladder: preferred-shard
// replica first, hedged after the p99-derived delay, retried with jittered
// backoff against siblings on failure, honoring 429 cooling windows, and
// degrading to the local fallback tier when every replica attempt fails.
func (r *Router) Estimate(ctx context.Context, qs [][]float64, taus []float64) (*Result, error) {
	if len(qs) == 0 || len(qs) != len(taus) {
		return nil, fmt.Errorf("serving: %d queries but %d taus", len(qs), len(taus))
	}
	r.requests.Add(1)
	start := time.Now()
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.Deadline)
		defer cancel()
	}
	ctx, tr, owned := reqtrace.Ensure(ctx, "router", taus[0])
	res, err := r.dispatch(ctx, tr, qs, taus)
	if owned {
		if res != nil {
			tr.SetOutcome(sum(res.Estimates), err)
		} else {
			tr.SetOutcome(0, err)
		}
		tr.Finish()
	}
	rec := telemetry.Default()
	if rec.Enabled() {
		rec.ObserveDuration(telemetry.MetricServingLatency, time.Since(start))
	}
	switch {
	case err != nil:
		r.failed.Add(1)
		rec.CountLabeled(telemetry.MetricServingRequests, telemetry.LabelOutcome, "error", 1)
	case res.Fallback:
		r.fellBack.Add(1)
		rec.CountLabeled(telemetry.MetricServingRequests, telemetry.LabelOutcome, "fallback", 1)
	case res.Degraded:
		r.degraded.Add(1)
		rec.CountLabeled(telemetry.MetricServingRequests, telemetry.LabelOutcome, "degraded", 1)
	default:
		r.ok.Add(1)
		rec.CountLabeled(telemetry.MetricServingRequests, telemetry.LabelOutcome, "ok", 1)
	}
	return res, err
}

// dispatch is the Estimate body with the trace in hand.
func (r *Router) dispatch(ctx context.Context, tr *reqtrace.Trace, qs [][]float64, taus []float64) (*Result, error) {
	shard := r.shardOf(qs[0])
	var (
		lastErr    error
		retried    bool
		hedged     bool
		lastFailed *replicaClient
	)
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		// Prefer a replica other than the one that just failed — its breaker
		// may need more consecutive failures to open than we have attempts.
		// With no other choice (single replica, rest cooling), re-try it.
		rc := r.pick(shard, lastFailed)
		if rc == nil && lastFailed != nil {
			rc = r.pick(shard, nil)
		}
		if rc == nil {
			// Every replica is open or cooling: no point burning attempts.
			lastErr = errors.New("serving: no replica available (all circuits open or cooling)")
			break
		}
		if attempt > 0 {
			retried = true
			tr.SetFlag(reqtrace.FlagRetried)
			r.retries.Add(1)
			telemetry.Default().Count(telemetry.MetricServingRetries, 1)
		}
		out, didHedge := r.sendHedged(ctx, rc, shard, qs, taus, hedged)
		hedged = hedged || didHedge
		if out.err == nil && out.status == http.StatusOK {
			out.rc.success()
			r.lat.Observe(out.rtt)
			return &Result{
				Estimates:  out.resp.Estimates,
				Degraded:   out.resp.Degraded,
				Retried:    retried,
				Hedged:     hedged,
				Generation: out.resp.Generation,
				Replica:    out.resp.Replica,
			}, nil
		}
		lastErr = r.recordAttemptFailure(out)
		lastFailed = out.rc
		// Back off before the next attempt — unless the failure already
		// consumed wall time advertising its own window (429 cooling is
		// per-replica; siblings are tried immediately).
		if out.status != http.StatusTooManyRequests && attempt+1 < r.opts.MaxAttempts {
			if !sleepCtx(ctx, r.backoff.Delay(attempt)) {
				lastErr = ctx.Err()
				break
			}
		}
	}
	return r.degradeLocal(ctx, tr, qs, taus, retried, hedged, lastErr)
}

// recordAttemptFailure updates breaker/cooling state for one failed
// attempt and returns the error to remember.
func (r *Router) recordAttemptFailure(out sendOut) error {
	switch {
	case out.status == http.StatusTooManyRequests:
		// A shedding replica is healthy — honor its advertised window
		// instead of tripping the breaker.
		r.shed.Add(1)
		telemetry.Default().Count(telemetry.MetricServingShedByReplica, 1)
		cool := out.retryAfter
		if cool <= 0 {
			cool = 10 * time.Millisecond
		}
		out.rc.coolUntil.Store(time.Now().Add(cool).UnixNano())
		return fmt.Errorf("serving: replica %s shed the request (retry after %v)", out.rc.name, cool)
	case out.canceled:
		// Our own deadline/hedge cancellation — not the replica's fault.
		return out.err
	default:
		out.rc.failure()
		if out.err != nil {
			return out.err
		}
		return fmt.Errorf("serving: replica %s answered %d: %s", out.rc.name, out.status, out.body)
	}
}

// degradeLocal is the bottom rung: answer from the router's local fallback
// tier (panic-captured, finiteness-guarded) or surface the last error.
func (r *Router) degradeLocal(ctx context.Context, tr *reqtrace.Trace, qs [][]float64, taus []float64, retried, hedged bool, lastErr error) (*Result, error) {
	if r.opts.Fallback == nil {
		return nil, lastErr
	}
	if ctx.Err() != nil && errors.Is(lastErr, context.DeadlineExceeded) {
		// The budget is gone; a local answer now would still be late.
		return nil, lastErr
	}
	var out []float64
	err := faulttol.Capture(func() error {
		out = r.opts.Fallback.EstimateSearchBatch(qs, taus)
		return nil
	})
	if err != nil || len(out) != len(qs) {
		return nil, lastErr
	}
	for _, v := range out {
		if !faulttol.Finite(v) {
			return nil, lastErr
		}
	}
	tr.SetFlag(reqtrace.FlagDegraded)
	telemetry.Default().Count(telemetry.MetricServingFallbacks, 1)
	return &Result{Estimates: out, Degraded: true, Fallback: true, Retried: retried, Hedged: hedged}, nil
}

// pick returns the first dispatchable replica in shard-affinity order:
// start at the preferred shard, walk the ring, skip excluded/cooling
// replicas and closed circuits' rejects. Returns nil when none qualifies.
func (r *Router) pick(shard int, exclude *replicaClient) *replicaClient {
	now := time.Now()
	for i := 0; i < len(r.reps); i++ {
		rc := r.reps[(shard+i)%len(r.reps)]
		if rc == exclude || rc.cooling(now) {
			continue
		}
		if !rc.breaker.Allow() {
			continue
		}
		return rc
	}
	return nil
}

// sendOut is one attempt's outcome.
type sendOut struct {
	rc         *replicaClient
	resp       *EstimateResponse
	status     int
	retryAfter time.Duration
	body       string
	err        error
	canceled   bool
	rtt        time.Duration
}

// sendHedged dispatches one attempt to rc and, unless hedging is disabled
// or already spent for this request, launches a single hedge copy to a
// sibling after the p99-derived delay. The first healthy answer wins; the
// loser is canceled. Reports whether a hedge was launched.
func (r *Router) sendHedged(ctx context.Context, rc *replicaClient, shard int, qs [][]float64, taus []float64, hedgeSpent bool) (sendOut, bool) {
	body, err := json.Marshal(EstimateRequest{
		Queries:    qs,
		Taus:       taus,
		DeadlineMs: remainingMs(ctx),
	})
	if err != nil {
		return sendOut{rc: rc, err: err}, false
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan sendOut, 2)
	go func() { results <- r.send(actx, rc, body) }()

	if r.opts.DisableHedge || hedgeSpent {
		return <-results, false
	}
	select {
	case out := <-results:
		return out, false
	case <-time.After(r.hedgeDelay()):
	}
	sib := r.pick(shard, rc)
	if sib == nil {
		return <-results, false
	}
	r.hedges.Add(1)
	telemetry.Default().Count(telemetry.MetricServingHedges, 1)
	reqtrace.FromContext(ctx).SetFlag(reqtrace.FlagHedged)
	go func() { results <- r.send(actx, sib, body) }()
	out := <-results
	if out.err == nil && out.status == http.StatusOK {
		return out, true
	}
	// First answer was a failure; the race is still live — take the second
	// if it is healthy. A real failure loses to a cancellation artifact.
	out2 := <-results
	if out2.err == nil && out2.status == http.StatusOK {
		return out2, true
	}
	if out.canceled && !out2.canceled {
		return out2, true
	}
	return out, true
}

// hedgeDelay derives the hedge trigger from observed latencies: the p99 of
// recent successful requests, floored at HedgeFloor while cold or noisy.
func (r *Router) hedgeDelay() time.Duration {
	if p := r.lat.P99(); p > r.opts.HedgeFloor {
		return p
	}
	return r.opts.HedgeFloor
}

// send performs one HTTP attempt against rc.
func (r *Router) send(ctx context.Context, rc *replicaClient, body []byte) sendOut {
	out := sendOut{rc: rc}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rc.base+"/estimate", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rc.hc.Do(req)
	if err != nil {
		out.err = err
		out.canceled = ctx.Err() != nil
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	out.rtt = time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		var er EstimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			out.status = 0
			out.err = fmt.Errorf("serving: replica %s: bad response body: %w", rc.name, err)
			return out
		}
		out.resp = &er
	case http.StatusTooManyRequests:
		out.retryAfter = retryAfterOf(resp.Header)
		drainBody(resp.Body, &out)
	default:
		drainBody(resp.Body, &out)
	}
	return out
}

// drainBody captures a bounded error body for diagnostics.
func drainBody(rd io.Reader, out *sendOut) {
	b, _ := io.ReadAll(io.LimitReader(rd, 512))
	out.body = string(bytes.TrimSpace(b))
}

// remainingMs converts the context's remaining budget to the wire's
// deadline_ms (0 = replica default).
func remainingMs(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// probeLoop polls replica health on a fixed period: /readyz recovery
// closes open circuits without burning a request; a dead replica's failed
// probes trip its breaker so traffic stops flowing into resets.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
			for _, rc := range r.reps {
				r.probeOne(rc)
			}
		}
	}
}

// probeOne checks one replica's /readyz with a short budget.
func (r *Router) probeOne(rc *replicaClient) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rc.base+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := rc.hc.Do(req)
	if err != nil {
		rc.failure()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		rc.success()
	} else {
		rc.failure()
	}
}
