package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"simquery/internal/estcache"
)

// stubReplica is an httptest-backed /estimate endpoint with a scriptable
// handler — router unit tests isolate dispatch behavior from the real
// replica and model stack.
func stubReplica(t *testing.T, handler func(w http.ResponseWriter, req EstimateRequest)) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var body EstimateRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		handler(w, body)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// okHandler answers every query with est and the given identity.
func okHandler(name string, gen uint64, est float64) func(http.ResponseWriter, EstimateRequest) {
	return func(w http.ResponseWriter, req EstimateRequest) {
		out := make([]float64, len(req.Queries))
		for i := range out {
			out[i] = est
		}
		writeJSON(w, http.StatusOK, EstimateResponse{Estimates: out, Generation: gen, Replica: name})
	}
}

// noProbe disables the background prober so tests control breaker state
// transitions themselves.
func testRouter(t *testing.T, urls []string, opts RouterOptions) *Router {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = -1
	}
	r, err := NewRouter(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

var (
	testQuery = []float64{0.25, 0.5, 0.75}
	testTau   = 0.3
)

func TestRouterHappyPath(t *testing.T) {
	a := stubReplica(t, okHandler("a", 7, 42))
	b := stubReplica(t, okHandler("b", 7, 42))
	r := testRouter(t, []string{a.URL, b.URL}, RouterOptions{DisableHedge: true})

	res, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 1 || res.Estimates[0] != 42 {
		t.Fatalf("estimates %v, want [42]", res.Estimates)
	}
	if res.Degraded || res.Fallback || res.Retried || res.Hedged {
		t.Fatalf("clean dispatch flagged %+v", res)
	}
	if res.Generation != 7 {
		t.Errorf("generation %d, want 7", res.Generation)
	}
	st := r.Stats()
	if st.Requests != 1 || st.OK != 1 || st.Errors != 0 {
		t.Errorf("stats %+v, want 1 request, 1 ok", st)
	}
}

func TestRouterValidatesBatch(t *testing.T) {
	a := stubReplica(t, okHandler("a", 1, 1))
	r := testRouter(t, []string{a.URL}, RouterOptions{DisableHedge: true})
	if _, err := r.Estimate(context.Background(), nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("mismatched taus accepted")
	}
}

func TestRouterNeedsReplicas(t *testing.T) {
	if _, err := NewRouter(nil, RouterOptions{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

func TestRouterShardAffinityIsDeterministic(t *testing.T) {
	a := stubReplica(t, okHandler("a", 1, 1))
	b := stubReplica(t, okHandler("b", 1, 1))
	r := testRouter(t, []string{a.URL, b.URL}, RouterOptions{DisableHedge: true})

	want := r.shardOf(testQuery)
	for i := 0; i < 10; i++ {
		if got := r.shardOf(testQuery); got != want {
			t.Fatalf("shardOf varied: %d then %d", want, got)
		}
	}
	if want < 0 || want >= 2 {
		t.Fatalf("shard %d out of range", want)
	}
	// The shard key is the cache fingerprint: a sub-quantum perturbation
	// maps to the same replica (warm cache affinity).
	jittered := []float64{testQuery[0] + 1e-12, testQuery[1], testQuery[2]}
	h1, _ := estcache.Fingerprint(testQuery)
	j1, _ := estcache.Fingerprint(jittered)
	if h1 == j1 && r.shardOf(jittered) != want {
		t.Fatal("same fingerprint routed to a different shard")
	}
}

// TestRouterRetriesDeadReplica points the preferred shard at a dead port
// and checks the dispatch ladder recovers on a sibling, flagging the retry.
func TestRouterRetriesDeadReplica(t *testing.T) {
	live := stubReplica(t, okHandler("live", 3, 9))
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	// Order the replica list so the test query's preferred shard is the
	// dead one — the first attempt must fail.
	urls := []string{dead.URL, live.URL}
	h1, _ := estcache.Fingerprint(testQuery)
	if h1%2 == 1 {
		urls = []string{live.URL, dead.URL}
	}
	r := testRouter(t, urls, RouterOptions{
		DisableHedge: true,
		BackoffBase:  time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})

	res, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau})
	if err != nil {
		t.Fatalf("dispatch failed despite a live sibling: %v", err)
	}
	if !res.Retried {
		t.Error("result not flagged Retried")
	}
	if res.Replica != "live" {
		t.Errorf("answered by %q, want live", res.Replica)
	}
	if st := r.Stats(); st.Retries < 1 {
		t.Errorf("stats %+v, want >= 1 retry", st)
	}
}

// TestRouterShedCoolsReplicaWithoutTrippingBreaker pins the 429 contract:
// the advertised window parks the replica, the breaker stays closed (an
// overloaded replica is healthy), and traffic moves to the sibling.
func TestRouterShedCoolsReplicaWithoutTrippingBreaker(t *testing.T) {
	var shedCalls atomic.Int64
	shedding := stubReplica(t, func(w http.ResponseWriter, req EstimateRequest) {
		shedCalls.Add(1)
		w.Header().Set(RetryAfterMsHeader, strconv.Itoa(200))
		w.Header().Set(RetryAfterHeader, "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "shed"})
	})
	calm := stubReplica(t, okHandler("calm", 1, 5))

	urls := []string{shedding.URL, calm.URL}
	shedIdx := 0
	h1, _ := estcache.Fingerprint(testQuery)
	if h1%2 == 1 {
		urls = []string{calm.URL, shedding.URL}
		shedIdx = 1
	}
	r := testRouter(t, urls, RouterOptions{DisableHedge: true})

	res, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != "calm" {
		t.Errorf("answered by %q, want calm", res.Replica)
	}
	if st := r.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	if got := r.reps[shedIdx].breaker.State(); got != CircuitClosed {
		t.Errorf("shedding replica's circuit %v, want closed", got)
	}
	if !r.reps[shedIdx].cooling(time.Now()) {
		t.Error("shedding replica not cooling despite the advertised window")
	}
	// Inside the window the shedding replica must not be re-attempted.
	before := shedCalls.Load()
	if _, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau}); err != nil {
		t.Fatal(err)
	}
	if shedCalls.Load() != before {
		t.Error("router re-attempted a cooling replica inside its window")
	}
}

func TestRouterBreakerOpensOnRepeated5xx(t *testing.T) {
	bad := stubReplica(t, func(w http.ResponseWriter, _ EstimateRequest) {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "broken"})
	})
	r := testRouter(t, []string{bad.URL}, RouterOptions{
		DisableHedge:     true,
		BreakerThreshold: 2,
		BackoffBase:      time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if _, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau}); err == nil {
		t.Fatal("dispatch to an always-500 replica succeeded")
	}
	if got := r.reps[0].breaker.State(); got != CircuitOpen {
		t.Fatalf("circuit %v after repeated 5xx, want open", got)
	}
	if st := r.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}

// TestRouterTotalLossFallsBackLocally is the bottom rung: every replica
// dead, a local sampling tier answers, the client sees no error.
func TestRouterTotalLossFallsBackLocally(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	f := getFixture(t)
	r := testRouter(t, []string{dead.URL}, RouterOptions{
		DisableHedge: true,
		Fallback:     newSampling(t, 31),
		BackoffBase:  time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})

	res, err := r.Estimate(context.Background(), f.queries[:2], f.taus[:2])
	if err != nil {
		t.Fatalf("total loss with a fallback errored: %v", err)
	}
	if !res.Fallback || !res.Degraded {
		t.Fatalf("result %+v, want Fallback+Degraded", res)
	}
	if len(res.Estimates) != 2 {
		t.Fatalf("%d estimates, want 2", len(res.Estimates))
	}
	st := r.Stats()
	if st.Fallback != 1 || st.Errors != 0 {
		t.Errorf("stats %+v, want 1 fallback, 0 errors", st)
	}
}

func TestRouterTotalLossWithoutFallbackErrors(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	r := testRouter(t, []string{dead.URL}, RouterOptions{
		DisableHedge: true,
		BackoffBase:  time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if _, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau}); err == nil {
		t.Fatal("total loss without a fallback did not error")
	}
	if st := r.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}

// TestRouterHedgesStalledReplica stalls the preferred replica well past the
// hedge delay and checks the sibling's answer wins.
func TestRouterHedgesStalledReplica(t *testing.T) {
	slow := stubReplica(t, func(w http.ResponseWriter, req EstimateRequest) {
		time.Sleep(400 * time.Millisecond)
		okHandler("slow", 1, 1)(w, req)
	})
	fast := stubReplica(t, okHandler("fast", 1, 2))

	urls := []string{slow.URL, fast.URL}
	h1, _ := estcache.Fingerprint(testQuery)
	if h1%2 == 1 {
		urls = []string{fast.URL, slow.URL}
	}
	r := testRouter(t, urls, RouterOptions{
		HedgeFloor: 15 * time.Millisecond,
		Deadline:   2 * time.Second,
	})

	start := time.Now()
	res, err := r.Estimate(context.Background(), [][]float64{testQuery}, []float64{testTau})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != "fast" {
		t.Fatalf("answered by %q, want the hedged sibling", res.Replica)
	}
	if !res.Hedged {
		t.Error("result not flagged Hedged")
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("hedged answer took %v — waited out the stall instead", elapsed)
	}
	if st := r.Stats(); st.Hedges != 1 {
		t.Errorf("Hedges = %d, want 1", st.Hedges)
	}
}

// TestRouterProbeClosesRecoveredCircuit kills a replica, lets the breaker
// open, restarts it, and checks the background prober closes the circuit
// without burning a client request.
func TestRouterProbeClosesRecoveredCircuit(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewUnstartedServer(mux)
	r := testRouter(t, []string{"http://" + srv.Listener.Addr().String()}, RouterOptions{
		DisableHedge:  true,
		ProbeInterval: 20 * time.Millisecond,
	})
	// Down: probes trip the breaker open without any client traffic.
	deadline := time.Now().Add(2 * time.Second)
	for r.reps[0].breaker.State() != CircuitOpen {
		if time.Now().After(deadline) {
			t.Fatal("prober never opened the circuit of a down replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Up: probes close it again.
	srv.Start()
	t.Cleanup(srv.Close)
	deadline = time.Now().Add(2 * time.Second)
	for r.reps[0].breaker.State() != CircuitClosed {
		if time.Now().After(deadline) {
			t.Fatal("prober never closed the circuit after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
