package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"simquery/cardest"
)

// fixtureT is the shared tiny dataset + workload for serving tests, built
// once per binary — dataset generation and exact labeling dominate test
// time, the serving tier under test does not care how the vectors were made.
type fixtureT struct {
	ds      *cardest.Dataset
	train   []cardest.Query
	queries [][]float64
	taus    []float64
}

var (
	fixOnce sync.Once
	fix     fixtureT
	fixErr  error
)

func getFixture(t *testing.T) *fixtureT {
	t.Helper()
	fixOnce.Do(func() {
		ds, err := cardest.GenerateProfile("imagenet", 600, 6, 11)
		if err != nil {
			fixErr = err
			return
		}
		train, test, err := cardest.BuildWorkload(ds, cardest.WorkloadOptions{
			TrainPoints: 12, TestPoints: 16, ThresholdsPerPoint: 3, Seed: 12,
		})
		if err != nil {
			fixErr = err
			return
		}
		fix.ds, fix.train = ds, train
		for _, q := range test {
			fix.queries = append(fix.queries, q.Vec)
			fix.taus = append(fix.taus, q.Tau)
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return &fix
}

// newSampling trains the cheap sampling baseline — no labeled workload
// needed, fast enough to train per test.
func newSampling(t *testing.T, seed int64) cardest.Estimator {
	t.Helper()
	f := getFixture(t)
	est, err := cardest.Train(f.ds, nil, cardest.TrainOptions{Method: "sampling", SampleRatio: 0.3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// newHardened wraps a fresh sampling primary per opts; the fallback, when
// unset, is a second sampling model so degraded paths stay answerable.
func newHardened(t *testing.T, seed int64, opts cardest.ServeOptions) *cardest.RobustEstimator {
	t.Helper()
	if opts.Fallback == nil {
		opts.Fallback = newSampling(t, seed+1000)
	}
	return cardest.Harden(newSampling(t, seed), opts)
}

// startReplica boots a replica on a loopback ephemeral port and tears it
// down with the test.
func startReplica(t *testing.T, est *cardest.RobustEstimator, cfg ReplicaConfig) *Replica {
	t.Helper()
	r := NewReplica(est, cfg)
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

// postEstimate sends one wire request and decodes whichever body came back.
func postEstimate(t *testing.T, baseURL string, body EstimateRequest) (status int, hdr http.Header, ok EstimateResponse, fail ErrorResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/estimate", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /estimate: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ok); err != nil {
			t.Fatalf("decode 200 body %q: %v", data, err)
		}
	} else if len(data) > 0 {
		_ = json.Unmarshal(data, &fail)
	}
	return resp.StatusCode, resp.Header, ok, fail
}

// slowEstimator delays every estimate — the saturation/stall stand-in for
// overload and hedging tests. It is deliberately context-blind: the
// hardened wrapper's best-effort deadline check after the call is exactly
// the production shape for non-cooperative estimators.
type slowEstimator struct {
	cardest.Estimator
	delay time.Duration
}

func (s *slowEstimator) EstimateSearch(q []float64, tau float64) float64 {
	time.Sleep(s.delay)
	return s.Estimator.EstimateSearch(q, tau)
}

func (s *slowEstimator) EstimateSearchBatch(qs [][]float64, taus []float64) []float64 {
	time.Sleep(s.delay)
	return s.Estimator.EstimateSearchBatch(qs, taus)
}
