// Package serving is the replicated network tier of the estimator: an
// HTTP/JSON batch-estimate replica (Replica, served by cmd/simserve) that
// swaps model generations atomically behind cardest.Reloadable, and a
// client-side dispatch layer (Router, driven by cmd/simload and embedding
// callers) that shards requests across replicas with per-request deadlines,
// bounded exponential backoff with jitter, single-retry hedging after a
// p99-derived delay, and a per-replica circuit breaker fed by health probes
// and error rates. The degradation ladder from DESIGN.md §10 extends across
// the process boundary here: a dead replica is retried or hedged to a
// sibling, an overloaded replica sheds with 429 + Retry-After and the
// router backs off, and total replica loss degrades to the router's local
// sampling tier — the client sees answers, never errors (DESIGN.md §15).
package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"simquery/cardest"
)

// Wire format of POST /estimate. One request carries a batch; replicas
// answer all queries or fail the request as a unit (the router re-dispatches
// whole requests, so partial answers never need merging across replicas).
type (
	// EstimateRequest is the JSON request body.
	EstimateRequest struct {
		// Queries are the query vectors; Taus the per-query thresholds
		// (len(Taus) must equal len(Queries)).
		Queries [][]float64 `json:"queries"`
		Taus    []float64   `json:"taus"`
		// DeadlineMs bounds serving time replica-side (0 = the replica's
		// configured default). The router also enforces its own deadline by
		// context, so a stalled replica cannot hold the client past budget.
		DeadlineMs int64 `json:"deadline_ms,omitempty"`
	}

	// EstimateResponse is the JSON response body of a 200 answer. Degraded
	// answers (fallback-tier estimates after a primary fault) are still 200:
	// availability is the contract, Degraded is the honesty bit.
	EstimateResponse struct {
		Estimates []float64 `json:"estimates"`
		// Degraded reports that at least one estimate came from the
		// replica's fallback tier (or, set by the router, from the router's
		// own local fallback after total replica loss).
		Degraded bool `json:"degraded,omitempty"`
		// Adapted reports that the answering estimator was serving
		// delta-corrected estimates (dataset mutations pending retrain).
		Adapted bool `json:"adapted,omitempty"`
		// Generation is the model generation that answered (the
		// ModelGeneration stamp pinned for this request).
		Generation uint64 `json:"generation"`
		// Replica names the answering replica.
		Replica string `json:"replica,omitempty"`
	}

	// ErrorResponse is the JSON body of every non-200 status.
	ErrorResponse struct {
		Error string `json:"error"`
	}

	// MutateRequest is the JSON body of POST /mutate: one dataset mutation
	// batch. Deletes name current dataset indices and are applied before
	// Inserts; the whole batch is validated before any change lands.
	MutateRequest struct {
		Inserts [][]float64 `json:"inserts,omitempty"`
		Deletes []int       `json:"deletes,omitempty"`
	}

	// MutateResponse is the JSON body of a 200 POST /mutate answer.
	MutateResponse struct {
		Inserted int `json:"inserted"`
		Deleted  int `json:"deleted"`
		// Pending counts mutations the serving model is currently
		// delta-correcting for (not yet absorbed by a retrain).
		Pending int64 `json:"pending"`
		// LiveSize is the dataset size after the batch.
		LiveSize int `json:"live_size"`
		// Generation is the model generation after the cache-invalidating
		// bump.
		Generation uint64 `json:"generation"`
		Replica    string `json:"replica,omitempty"`
	}
)

// Validate checks the mutation batch shape (emptiness; the adapter
// validates dimensions and delete indices against the live dataset).
func (r *MutateRequest) Validate() error {
	if len(r.Inserts) == 0 && len(r.Deletes) == 0 {
		return errors.New("serving: empty mutation batch")
	}
	for i, v := range r.Inserts {
		if len(v) == 0 {
			return fmt.Errorf("serving: insert %d is empty", i)
		}
	}
	return nil
}

// Validate checks the request shape; the replica rejects malformed bodies
// with 400 before touching the model.
func (r *EstimateRequest) Validate() error {
	if len(r.Queries) == 0 {
		return errors.New("serving: empty query batch")
	}
	if len(r.Queries) != len(r.Taus) {
		return fmt.Errorf("serving: %d queries but %d taus", len(r.Queries), len(r.Taus))
	}
	for i, q := range r.Queries {
		if len(q) == 0 {
			return fmt.Errorf("serving: query %d is empty", i)
		}
	}
	return nil
}

// RetryAfterHeader and RetryAfterMsHeader advertise the overload backoff
// window on 429 responses. Retry-After carries whole seconds (HTTP
// convention, coarse); X-Retry-After-Ms carries the precise window and is
// preferred by the router.
const (
	RetryAfterHeader   = "Retry-After"
	RetryAfterMsHeader = "X-Retry-After-Ms"
)

// WriteError maps the serving tier's typed errors onto HTTP statuses — the
// contract documented in DESIGN.md §15:
//
//	cardest.ErrOverloaded            → 429 + Retry-After (load shedding;
//	                                   retryAfter advertises the window)
//	context deadline / cancellation  → 504 (the request's budget is spent;
//	                                   retrying it would double-bill)
//	anything else                    → 500 (degraded-with-no-fallback,
//	                                   reload failures, internal faults)
//
// Degraded answers never reach here: a fallback-served estimate is a 200
// with degraded:true in the body.
func WriteError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, cardest.ErrOverloaded):
		status = http.StatusTooManyRequests
		secs := int64(retryAfter.Round(time.Second) / time.Second)
		w.Header().Set(RetryAfterHeader, strconv.FormatInt(secs, 10))
		w.Header().Set(RetryAfterMsHeader, strconv.FormatInt(retryAfter.Milliseconds(), 10))
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeJSON writes v as the JSON body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterOf parses a 429 response's advertised backoff window: the
// millisecond header when present, else Retry-After seconds, else 0.
func retryAfterOf(h http.Header) time.Duration {
	if ms := h.Get(RetryAfterMsHeader); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v >= 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if s := h.Get(RetryAfterHeader); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v >= 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}
