package serving

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"simquery/cardest"
)

func TestValidateRejectsMalformedBatches(t *testing.T) {
	cases := []struct {
		name string
		req  EstimateRequest
	}{
		{"empty batch", EstimateRequest{}},
		{"len mismatch", EstimateRequest{Queries: [][]float64{{1}}, Taus: []float64{0.1, 0.2}}},
		{"empty query", EstimateRequest{Queries: [][]float64{{}}, Taus: []float64{0.1}}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
	good := EstimateRequest{Queries: [][]float64{{1, 2}}, Taus: []float64{0.1}}
	if err := good.Validate(); err != nil {
		t.Errorf("well-formed request rejected: %v", err)
	}
}

// TestWriteErrorContract pins the HTTP mapping documented in DESIGN.md §15:
// overload is 429 with both Retry-After headers, a spent deadline is 504,
// and everything else is 500. Degraded answers never reach WriteError.
func TestWriteErrorContract(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter bool
	}{
		{"overload", cardest.ErrOverloaded, http.StatusTooManyRequests, true},
		{"wrapped overload", errors.Join(errors.New("ctx"), cardest.ErrOverloaded), http.StatusTooManyRequests, true},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{"canceled", context.Canceled, http.StatusGatewayTimeout, false},
		{"internal", errors.New("boom"), http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		WriteError(w, tc.err, 1500*time.Millisecond)
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, w.Code, tc.status)
		}
		if got := w.Header().Get("Content-Type"); got != "application/json" {
			t.Errorf("%s: Content-Type %q", tc.name, got)
		}
		if tc.retryAfter {
			if got := w.Header().Get(RetryAfterHeader); got != "2" {
				t.Errorf("%s: Retry-After %q, want %q (rounded seconds)", tc.name, got, "2")
			}
			if got := w.Header().Get(RetryAfterMsHeader); got != "1500" {
				t.Errorf("%s: %s %q, want 1500", tc.name, RetryAfterMsHeader, got)
			}
		} else if got := w.Header().Get(RetryAfterHeader); got != "" {
			t.Errorf("%s: unexpected Retry-After %q", tc.name, got)
		}
	}
}

func TestRetryAfterOfPrefersMilliseconds(t *testing.T) {
	h := http.Header{}
	h.Set(RetryAfterHeader, "2")
	h.Set(RetryAfterMsHeader, "75")
	if got := retryAfterOf(h); got != 75*time.Millisecond {
		t.Fatalf("retryAfterOf = %v, want 75ms (ms header preferred)", got)
	}
	h.Del(RetryAfterMsHeader)
	if got := retryAfterOf(h); got != 2*time.Second {
		t.Fatalf("retryAfterOf = %v, want 2s (seconds fallback)", got)
	}
	h.Del(RetryAfterHeader)
	if got := retryAfterOf(h); got != 0 {
		t.Fatalf("retryAfterOf = %v, want 0 (no headers)", got)
	}
	h.Set(RetryAfterMsHeader, "garbage")
	if got := retryAfterOf(h); got != 0 {
		t.Fatalf("retryAfterOf = %v, want 0 (unparseable)", got)
	}
}
