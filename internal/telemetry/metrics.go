package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that holds the last value set.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 sum lock-free (CAS on the bit
// pattern).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a lock-free fixed-bucket histogram. Bounds are ascending
// upper bounds with Prometheus `le` semantics: an observation v lands in
// the first bucket whose bound ≥ v, or in the implicit +Inf overflow
// bucket. Observations are assumed non-negative (latencies, fractions,
// losses); quantile interpolation uses 0 as the first bucket's lower edge.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is not copied; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Lock-free: a linear bound scan (bucket counts
// are small and fixed) plus three atomic updates.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Bounds returns the bucket upper bounds (shared, read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot returns a point-in-time copy of the histogram state. Buckets
// are read individually (not as one atomic unit), so a snapshot taken
// under concurrent writes can be off by in-flight observations — fine for
// monitoring, documented for tests.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a frozen histogram: per-bucket counts (last entry
// is the +Inf bucket), the total count, and the sum of observations.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket containing the target rank. Values in the overflow
// bucket report the largest finite bound (the histogram cannot see past
// it). Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the mean observation (0 for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LinearBuckets returns count ascending bounds start, start+width, … .
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns count ascending bounds start, start×factor, … .
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default histogram resolution for durations in
// seconds: 1µs … ~16s, doubling — sub-millisecond estimates (the paper's
// efficiency claim) land mid-range with headroom on both sides.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 2, 25) }

// FractionBuckets is the resolution for values in [0, 1] (routing
// selectivity): 0.05-wide linear buckets.
func FractionBuckets() []float64 { return LinearBuckets(0.05, 0.05, 20) }

// QErrorBuckets is the resolution for q-errors (always ≥ 1): geometric
// from 1 to ~1130, dense near 1 where a healthy estimator lives (Table 2
// reports means in the 1–4 range) with room for drifted tails.
func QErrorBuckets() []float64 { return ExponentialBuckets(1, 1.55, 17) }
