package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metricKind discriminates the instrument a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one metric family: a name, help text, at most one label key,
// and one instrument per label value (empty label value = the unlabeled
// series).
type family struct {
	name     string
	help     string
	labelKey string
	kind     metricKind
	buckets  []float64
	series   sync.Map // labelVal(string) -> *Counter | *Gauge | *Histogram
}

// instrument returns the series for labelVal, creating it on first use.
// Steady state is a single lock-free map load.
func (f *family) instrument(labelVal string) any {
	if v, ok := f.series.Load(labelVal); ok {
		return v
	}
	var fresh any
	switch f.kind {
	case kindCounter:
		fresh = &Counter{}
	case kindGauge:
		fresh = &Gauge{}
	default:
		fresh = NewHistogram(f.buckets)
	}
	v, _ := f.series.LoadOrStore(labelVal, fresh)
	return v
}

// Registry is the live Recorder: a set of metric families updated with
// lock-free atomics and rendered in Prometheus text format (it also
// implements http.Handler for a /metrics endpoint). All methods are safe
// for concurrent use. Families for the standard simquery metrics are
// pre-registered with help text and buckets; unknown families are created
// on first use with defaults (histograms get LatencyBuckets).
type Registry struct {
	families sync.Map // name(string) -> *family
	start    time.Time
}

// NewRegistry builds a Registry with the standard simquery families
// registered.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now()}
	r.RegisterHistogram(MetricEstimateLatency, "Latency of single-query cardinality estimates.", LabelMethod, LatencyBuckets())
	r.RegisterHistogram(MetricEstimateBatch, "Latency of one batched estimate call (whole batch).", LabelMethod, LatencyBuckets())
	r.RegisterCounter(MetricEstimatesTotal, "Estimates served (batched calls add the batch size).", LabelMethod)
	r.RegisterCounter(MetricBatchFallback, "Batched estimate calls that serialized per query (no native batch path).", LabelMethod)
	r.RegisterHistogram(MetricStageSeconds, "Time per pipeline stage (see DESIGN.md §8 span taxonomy).", LabelStage, LatencyBuckets())
	r.RegisterHistogram(MetricRoutingSelectivity, "Fraction of local models selected per query by global routing.", LabelMethod, FractionBuckets())
	r.RegisterHistogram(MetricJoinLatency, "Latency of join cardinality estimates.", LabelMethod, LatencyBuckets())
	r.RegisterHistogram(MetricTrainEpochLoss, "Mean mini-batch loss per finished training epoch.", "", ExponentialBuckets(0.01, 2, 20))
	r.RegisterCounter(MetricTrainEpochsTotal, "Finished training epochs.", "")
	r.RegisterCounter(MetricLabeledQueriesTotal, "Exactly-labeled queries (ground-truth construction).", "")
	r.RegisterGauge(MetricPoolWorkers, "Configured worker count of the tensor kernel pool.", "")
	r.RegisterGauge(MetricPoolUtilization, "Fraction of tensor-pool workers inside a parallel region.", "")
	r.RegisterCounter(MetricPoolDispatchTotal, "Parallel dispatches onto the tensor kernel pool.", "")
	r.RegisterCounter(MetricRecoveredPanics, "Panics converted into errors by the fault-tolerant serving paths.", "")
	r.RegisterCounter(MetricDegradedEstimates, "Estimates answered by the fallback estimator after a primary fault.", "")
	r.RegisterCounter(MetricShedRequests, "Estimate requests rejected by the admission gate (in-flight limit).", "")
	r.RegisterCounter(MetricCacheHits, "Estimate-cache lookups answered from a cached entry.", "")
	r.RegisterCounter(MetricCacheMisses, "Estimate-cache lookups that fell through to the real estimator.", "")
	r.RegisterCounter(MetricCacheInterpolated, "Cache hits answered by monotone interpolation between τ anchors.", "")
	r.RegisterCounter(MetricCacheEvictions, "Estimate-cache entries dropped (LRU, TTL, or stale generation).", "")
	r.RegisterGauge(MetricCacheHitRate, "Cumulative estimate-cache hit fraction: hits / (hits + misses).", "")
	r.RegisterGauge(MetricCacheEntries, "Live entries across all estimate-cache shards.", "")
	r.RegisterHistogram(MetricProbeQError, "Q-error of sampled served estimates vs exact background counts.", LabelFamily, QErrorBuckets())
	r.RegisterHistogram(MetricProbeQErrorTau, "Probe q-error by τ band (quartiles of τ_max).", LabelTauBand, QErrorBuckets())
	r.RegisterGauge(MetricProbeDrift, "EWMA of |log q-error| over completed probes (accuracy drift).", "")
	r.RegisterCounter(MetricProbesTotal, "Completed accuracy probes (exact label computed).", "")
	r.RegisterCounter(MetricProbeDropped, "Sampled probes dropped because the probe queue was full.", "")
	r.RegisterGauge(MetricProbeQueueDepth, "Current probe queue occupancy.", "")
	r.RegisterCounter(MetricServingRequests, "Router-dispatched serving requests by final outcome.", LabelOutcome)
	r.RegisterHistogram(MetricServingLatency, "End-to-end router request latency including retries and hedges.", "", LatencyBuckets())
	r.RegisterCounter(MetricServingRetries, "Re-dispatches to a sibling replica after a failed or shed attempt.", "")
	r.RegisterCounter(MetricServingHedges, "Hedge requests launched after the p99-derived hedge delay.", "")
	r.RegisterCounter(MetricServingShedByReplica, "429 overload responses received from replicas.", "")
	r.RegisterCounter(MetricServingFallbacks, "Requests answered by the router's local degraded tier.", "")
	r.RegisterCounter(MetricServingReloads, "Completed zero-downtime model swaps (POST /reload).", "")
	r.RegisterGauge(MetricServingCircuitState, "Replica circuit state: 0 closed, 1 half-open, 2 open.", LabelReplica)
	r.RegisterCounter(MetricReplicaRequests, "Requests served by this replica process, by outcome.", LabelOutcome)
	r.RegisterCounter(MetricMutationsTotal, "Applied dataset mutations, by op (insert, delete).", LabelOp)
	r.RegisterGauge(MetricPendingDeltas, "Mutations applied since the serving model's last (re)train.", "")
	r.RegisterGauge(MetricLiveDatasetSize, "Current live dataset size (objects).", "")
	r.RegisterGauge(MetricProbeDriftFamily, "Per-family EWMA of |log q-error| scored by the drift monitor.", LabelFamily)
	r.RegisterCounter(MetricDriftEvents, "Drift-threshold crossings (hysteresis gate firings), by family.", LabelFamily)
	r.RegisterCounter(MetricRetrainsTotal, "Background retrain runs by outcome (ok, error, deadline, skipped).", LabelOutcome)
	r.RegisterHistogram(MetricRetrainSeconds, "Wall time of background retrain runs (snapshot through swap).", "", LatencyBuckets())
	return r
}

// register adds a family if absent and returns it.
func (r *Registry) register(name, help, labelKey string, kind metricKind, buckets []float64) *family {
	if v, ok := r.families.Load(name); ok {
		return v.(*family)
	}
	f := &family{name: name, help: help, labelKey: labelKey, kind: kind, buckets: buckets}
	v, _ := r.families.LoadOrStore(name, f)
	return v.(*family)
}

// RegisterCounter declares a counter family (labelKey "" for unlabeled).
func (r *Registry) RegisterCounter(name, help, labelKey string) {
	r.register(name, help, labelKey, kindCounter, nil)
}

// RegisterGauge declares a gauge family.
func (r *Registry) RegisterGauge(name, help, labelKey string) {
	r.register(name, help, labelKey, kindGauge, nil)
}

// RegisterHistogram declares a histogram family with the given bucket
// upper bounds.
func (r *Registry) RegisterHistogram(name, help, labelKey string, buckets []float64) {
	r.register(name, help, labelKey, kindHistogram, buckets)
}

// lookup returns the family, auto-registering unknown names so recording
// never drops data.
func (r *Registry) lookup(name, labelKey string, kind metricKind) *family {
	if v, ok := r.families.Load(name); ok {
		return v.(*family)
	}
	var buckets []float64
	if kind == kindHistogram {
		buckets = LatencyBuckets()
	}
	return r.register(name, "", labelKey, kind, buckets)
}

// Enabled implements Recorder.
func (r *Registry) Enabled() bool { return true }

// Count implements Recorder.
func (r *Registry) Count(name string, delta int64) { r.CountLabeled(name, "", "", delta) }

// CountLabeled implements Recorder.
func (r *Registry) CountLabeled(name, labelKey, labelVal string, delta int64) {
	if c, ok := r.lookup(name, labelKey, kindCounter).instrument(labelVal).(*Counter); ok {
		c.Add(delta)
	}
}

// SetGauge implements Recorder.
func (r *Registry) SetGauge(name string, v float64) { r.SetGaugeLabeled(name, "", "", v) }

// SetGaugeLabeled implements Recorder.
func (r *Registry) SetGaugeLabeled(name, labelKey, labelVal string, v float64) {
	if g, ok := r.lookup(name, labelKey, kindGauge).instrument(labelVal).(*Gauge); ok {
		g.Set(v)
	}
}

// Observe implements Recorder.
func (r *Registry) Observe(name string, v float64) { r.ObserveLabeled(name, "", "", v) }

// ObserveLabeled implements Recorder.
func (r *Registry) ObserveLabeled(name, labelKey, labelVal string, v float64) {
	if h, ok := r.lookup(name, labelKey, kindHistogram).instrument(labelVal).(*Histogram); ok {
		h.Observe(v)
	}
}

// ObserveDuration implements Recorder.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.ObserveLabeled(name, "", "", d.Seconds())
}

// ObserveDurationLabeled implements Recorder.
func (r *Registry) ObserveDurationLabeled(name, labelKey, labelVal string, d time.Duration) {
	r.ObserveLabeled(name, labelKey, labelVal, d.Seconds())
}

// CounterValue reads a counter series (0 if absent).
func (r *Registry) CounterValue(name, labelVal string) int64 {
	if v, ok := r.families.Load(name); ok {
		if s, ok := v.(*family).series.Load(labelVal); ok {
			if c, ok := s.(*Counter); ok {
				return c.Value()
			}
		}
	}
	return 0
}

// GaugeValue reads a gauge series (0 if absent).
func (r *Registry) GaugeValue(name, labelVal string) float64 {
	if v, ok := r.families.Load(name); ok {
		if s, ok := v.(*family).series.Load(labelVal); ok {
			if g, ok := s.(*Gauge); ok {
				return g.Value()
			}
		}
	}
	return 0
}

// HistogramSnapshotOf reads a histogram series; ok is false if the series
// does not exist (or the name is not a histogram).
func (r *Registry) HistogramSnapshotOf(name, labelVal string) (HistogramSnapshot, bool) {
	if v, ok := r.families.Load(name); ok {
		if s, ok := v.(*family).series.Load(labelVal); ok {
			if h, ok := s.(*Histogram); ok {
				return h.Snapshot(), true
			}
		}
	}
	return HistogramSnapshot{}, false
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// seriesName renders name{key="val"} (or just name when unlabeled), with
// optional extra le pair for histogram buckets.
func seriesName(name, labelKey, labelVal, le string) string {
	var pairs []string
	if labelKey != "" && labelVal != "" {
		pairs = append(pairs, labelKey+`="`+escapeLabel(labelVal)+`"`)
	}
	if le != "" {
		pairs = append(pairs, `le="`+le+`"`)
	}
	if len(pairs) == 0 {
		return name
	}
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// formatFloat renders a float in the shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in sorted order so output
// is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var names []string
	r.families.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, name := range names {
		v, _ := r.families.Load(name)
		f := v.(*family)
		var labels []string
		f.series.Range(func(k, _ any) bool {
			labels = append(labels, k.(string))
			return true
		})
		if len(labels) == 0 {
			continue // declared but never recorded
		}
		sort.Strings(labels)
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		kind := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, kind); err != nil {
			return err
		}
		for _, lv := range labels {
			s, _ := f.series.Load(lv)
			if err := writeSeries(w, f, lv, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series of a family.
func writeSeries(w io.Writer, f *family, labelVal string, s any) error {
	switch inst := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, f.labelKey, labelVal, ""), inst.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, f.labelKey, labelVal, ""), formatFloat(inst.Value()))
		return err
	case *Histogram:
		snap := inst.Snapshot()
		var cum uint64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_bucket", f.labelKey, labelVal, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", f.labelKey, labelVal, ""), formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", f.labelKey, labelVal, ""), snap.Count)
		return err
	}
	return nil
}

// ServeHTTP implements http.Handler: the /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// ExpvarSnapshot returns a JSON-friendly view of every series: counters
// and gauges as values, histograms as {count, sum, mean, p50, p95, p99}.
// Published under the "simquery" expvar by cardest.ServeTelemetry.
func (r *Registry) ExpvarSnapshot() map[string]any {
	out := map[string]any{
		"uptime_seconds": time.Since(r.start).Seconds(),
	}
	r.families.Range(func(_, fv any) bool {
		f := fv.(*family)
		f.series.Range(func(lv, sv any) bool {
			key := f.name
			if l := lv.(string); l != "" {
				key += "{" + f.labelKey + "=" + l + "}"
			}
			switch inst := sv.(type) {
			case *Counter:
				out[key] = inst.Value()
			case *Gauge:
				out[key] = inst.Value()
			case *Histogram:
				snap := inst.Snapshot()
				out[key] = map[string]any{
					"count": snap.Count,
					"sum":   snap.Sum,
					"mean":  snap.Mean(),
					"p50":   snap.Quantile(0.50),
					"p95":   snap.Quantile(0.95),
					"p99":   snap.Quantile(0.99),
				}
			}
			return true
		})
		return true
	})
	return out
}
