// Package telemetry is the stdlib-only observability substrate for the
// serving and training paths: atomic counters, gauges, and lock-free
// fixed-bucket histograms with p50/p95/p99 snapshots, a lightweight span
// API for per-stage timings, and a registry that renders everything in
// Prometheus text format (plus an expvar snapshot).
//
// The design goal is that instrumentation is free when telemetry is off:
// every hot path records through the Recorder interface, whose default
// implementation is a no-op that performs zero allocations and no clock
// reads. Installing a live *Registry (cardest.ServeTelemetry does this)
// turns the same call sites into lock-free atomic updates.
//
// Metric naming follows Prometheus conventions: a family name like
// simquery_stage_seconds, one optional label per family (low cardinality:
// method names, stage names), histograms in base units (seconds,
// fractions). The full taxonomy lives in DESIGN.md §8.
package telemetry

import (
	"context"
	"sync/atomic"
	"time"
)

// Metric families recorded by the instrumented paths. Families are
// registered with help text and buckets by NewRegistry; the constants keep
// call sites and tests in one vocabulary.
const (
	// MetricEstimateLatency is the per-call latency of single-query
	// estimates, labeled by method (Table 2 naming).
	MetricEstimateLatency = "simquery_estimate_latency_seconds"
	// MetricEstimateBatch is the per-call latency of one batched estimate
	// call (the whole batch, not per query), labeled by method.
	MetricEstimateBatch = "simquery_estimate_batch_seconds"
	// MetricEstimatesTotal counts estimates served, labeled by method;
	// batched calls add the batch size.
	MetricEstimatesTotal = "simquery_estimates_total"
	// MetricBatchFallback counts batched estimate calls that silently
	// serialized into a per-query loop because the method has no native
	// batch path, labeled by method.
	MetricBatchFallback = "simquery_batch_serial_fallback_total"
	// MetricStageSeconds is the span histogram: time per pipeline stage,
	// labeled by stage (see the Stage* constants).
	MetricStageSeconds = "simquery_stage_seconds"
	// MetricRoutingSelectivity is the fraction of local models the global
	// model selects per query — the paper's pruning claim as a live signal.
	MetricRoutingSelectivity = "simquery_routing_selectivity"
	// MetricJoinLatency is the per-call latency of join estimates, labeled
	// by method.
	MetricJoinLatency = "simquery_join_latency_seconds"
	// MetricTrainEpochLoss observes the mean mini-batch loss of each
	// finished training epoch (local, global, and CardNet loops).
	MetricTrainEpochLoss = "simquery_train_epoch_loss"
	// MetricTrainEpochsTotal counts finished training epochs.
	MetricTrainEpochsTotal = "simquery_train_epochs_total"
	// MetricLabeledQueriesTotal counts exactly-labeled queries (training
	// data construction throughput).
	MetricLabeledQueriesTotal = "simquery_labeled_queries_total"
	// MetricPoolWorkers is the configured worker count of the tensor
	// kernel pool.
	MetricPoolWorkers = "simquery_tensor_pool_workers"
	// MetricPoolUtilization is the fraction of tensor-pool workers
	// currently inside a parallel region.
	MetricPoolUtilization = "simquery_tensor_pool_utilization"
	// MetricPoolDispatchTotal counts parallel dispatches onto the tensor
	// pool (inline/serial kernel runs are not counted).
	MetricPoolDispatchTotal = "simquery_tensor_pool_dispatch_total"
	// MetricRecoveredPanics counts panics converted into errors by the
	// fault-tolerant serving paths (pool workers, local-model isolation,
	// the hardened estimate wrapper). Each panic is counted once, at first
	// capture.
	MetricRecoveredPanics = "simquery_recovered_panics_total"
	// MetricDegradedEstimates counts estimates answered by the registered
	// fallback estimator after the primary panicked or produced a
	// non-finite value; batched degradations add the batch size.
	MetricDegradedEstimates = "simquery_degraded_estimates_total"
	// MetricShedRequests counts estimate requests rejected by the
	// admission gate because the in-flight limit was reached.
	MetricShedRequests = "simquery_shed_requests_total"
	// MetricPrecisionFallbacks counts Harden calls that requested a lowered
	// serving tier (f32/int8) but fell back to f64 because the estimator has
	// no lowered path or its precision pre-check failed.
	MetricPrecisionFallbacks = "simquery_precision_fallbacks_total"
	// MetricCacheHits counts estimate-cache lookups answered from a cached
	// entry (exact anchor or interpolated).
	MetricCacheHits = "simquery_estcache_hits_total"
	// MetricCacheMisses counts estimate-cache lookups that fell through to
	// the real estimator (fingerprint miss, stale generation, or expired
	// TTL).
	MetricCacheMisses = "simquery_estcache_misses_total"
	// MetricCacheInterpolated counts cache hits answered by monotone
	// interpolation between τ anchors rather than an exact anchor match.
	MetricCacheInterpolated = "simquery_estcache_interpolated_total"
	// MetricCacheEvictions counts entries dropped from the estimate cache
	// (LRU pressure, TTL expiry, or stale generation).
	MetricCacheEvictions = "simquery_estcache_evictions_total"
	// MetricCacheHitRate is the cumulative hit fraction of the estimate
	// cache: hits / (hits + misses) since process start.
	MetricCacheHitRate = "simquery_estcache_hit_rate"
	// MetricCacheEntries is the current number of live entries across all
	// cache shards.
	MetricCacheEntries = "simquery_estcache_entries"
	// MetricProbeQError observes the q-error of sampled served estimates
	// against exact background counts, labeled by estimator family — the
	// paper's Table 2 accuracy claim as a live signal.
	MetricProbeQError = "simquery_probe_qerror"
	// MetricProbeQErrorTau is the same probe q-error broken out by τ band
	// (quartiles of τ_max), so accuracy drift localized to one end of the
	// threshold band is visible (cf. Wang et al., monotonic estimation
	// across the τ band).
	MetricProbeQErrorTau = "simquery_probe_qerror_tau"
	// MetricProbeDrift is the EWMA of |log q-error| over completed probes —
	// the drift gauge a background retrainer watches: near 0 while the
	// model tracks the data, rising as served accuracy decays.
	MetricProbeDrift = "simquery_probe_drift_logq"
	// MetricProbesTotal counts completed accuracy probes (exact label
	// computed and q-error recorded).
	MetricProbesTotal = "simquery_probes_total"
	// MetricProbeDropped counts sampled probes dropped because the probe
	// queue was full — backpressure never reaches the request path.
	MetricProbeDropped = "simquery_probe_dropped_total"
	// MetricProbeQueueDepth is the current probe queue occupancy.
	MetricProbeQueueDepth = "simquery_probe_queue_depth"
	// MetricServingRequests counts router-dispatched requests by final
	// outcome (LabelOutcome: ok, degraded, fallback, error).
	MetricServingRequests = "simquery_serving_requests_total"
	// MetricServingLatency observes end-to-end router request latency
	// (dispatch through final answer, including retries and hedges).
	MetricServingLatency = "simquery_serving_request_seconds"
	// MetricServingRetries counts re-dispatches to a sibling replica after
	// a failed or shed attempt.
	MetricServingRetries = "simquery_serving_retries_total"
	// MetricServingHedges counts hedge copies launched after the
	// p99-derived hedge delay.
	MetricServingHedges = "simquery_serving_hedges_total"
	// MetricServingShedByReplica counts 429 responses received from
	// replicas (the admission gate seen from the client side).
	MetricServingShedByReplica = "simquery_serving_replica_shed_total"
	// MetricServingFallbacks counts requests answered by the router's
	// local degraded tier after every replica attempt failed.
	MetricServingFallbacks = "simquery_serving_fallback_total"
	// MetricServingReloads counts completed zero-downtime model swaps on
	// replicas (POST /reload).
	MetricServingReloads = "simquery_serving_reloads_total"
	// MetricServingCircuitState reports each replica's circuit state
	// (LabelReplica; 0 = closed, 1 = half-open, 2 = open).
	MetricServingCircuitState = "simquery_serving_circuit_state"
	// MetricReplicaRequests counts requests served by this replica process,
	// labeled by outcome (ok, degraded, shed, deadline, error).
	MetricReplicaRequests = "simquery_replica_requests_total"
	// MetricMutationsTotal counts applied dataset mutations, labeled by op
	// (insert, delete).
	MetricMutationsTotal = "simquery_mutations_total"
	// MetricPendingDeltas is the number of mutations applied since the
	// serving model's last (re)train — the delta-adjusted estimates' drift
	// budget; falls back to 0 after a retrain swap.
	MetricPendingDeltas = "simquery_pending_deltas"
	// MetricLiveDatasetSize is the current live dataset size (objects).
	MetricLiveDatasetSize = "simquery_live_dataset_size"
	// MetricProbeDriftFamily is the per-family EWMA of |log q-error| the
	// drift monitor scores (probe_drift_logq broken out by family).
	MetricProbeDriftFamily = "simquery_probe_drift_logq_family"
	// MetricDriftEvents counts drift-threshold crossings (hysteresis gate
	// firings), labeled by estimator family.
	MetricDriftEvents = "simquery_drift_events_total"
	// MetricRetrainsTotal counts background retrain runs by outcome
	// (ok, error, deadline, skipped).
	MetricRetrainsTotal = "simquery_retrains_total"
	// MetricRetrainSeconds observes the wall time of background retrain
	// runs (snapshot through swap).
	MetricRetrainSeconds = "simquery_retrain_seconds"
)

// Span taxonomy: the stage label values of MetricStageSeconds. The serving
// pipeline decomposes as feature build → global routing → local sub-batch
// eval → merge; labeling stages cover ground-truth construction.
const (
	StageFeatureBuild  = "feature_build"
	StageGlobalRoute   = "global_route"
	StageLocalEval     = "local_eval"
	StageMerge         = "merge"
	StageLabelWorkload = "label_workload"
	StageLabelQueries  = "label_queries"
	StageLabelSegments = "label_segments"
)

// Label keys used by the standard families. LabelFamily groups the probe
// accuracy series by estimator family (Describer.Family values), and
// LabelTauBand buckets them by threshold quartile.
const (
	LabelMethod  = "method"
	LabelStage   = "stage"
	LabelFamily  = "family"
	LabelTauBand = "tau_band"
	LabelOutcome = "outcome"
	LabelReplica = "replica"
	LabelOp      = "op"
)

// Recorder is the instrumentation surface the hot paths record through.
// Implementations must be safe for concurrent use. The Labeled variants
// attach one label (key, value) to the series; families use at most one
// label key, and callers must pass the same key for a given family.
//
// Enabled reports whether recording does anything; hot paths use it to
// skip clock reads and derived-value computation entirely when telemetry
// is off.
type Recorder interface {
	Enabled() bool
	Count(name string, delta int64)
	CountLabeled(name, labelKey, labelVal string, delta int64)
	SetGauge(name string, v float64)
	SetGaugeLabeled(name, labelKey, labelVal string, v float64)
	Observe(name string, v float64)
	ObserveLabeled(name, labelKey, labelVal string, v float64)
	ObserveDuration(name string, d time.Duration)
	ObserveDurationLabeled(name, labelKey, labelVal string, d time.Duration)
}

// Nop is the default Recorder: every method is an empty body and Enabled
// is false. It allocates nothing and reads no clocks.
type Nop struct{}

// Enabled implements Recorder.
func (Nop) Enabled() bool { return false }

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// CountLabeled implements Recorder.
func (Nop) CountLabeled(string, string, string, int64) {}

// SetGauge implements Recorder.
func (Nop) SetGauge(string, float64) {}

// SetGaugeLabeled implements Recorder.
func (Nop) SetGaugeLabeled(string, string, string, float64) {}

// Observe implements Recorder.
func (Nop) Observe(string, float64) {}

// ObserveLabeled implements Recorder.
func (Nop) ObserveLabeled(string, string, string, float64) {}

// ObserveDuration implements Recorder.
func (Nop) ObserveDuration(string, time.Duration) {}

// ObserveDurationLabeled implements Recorder.
func (Nop) ObserveDurationLabeled(string, string, string, time.Duration) {}

// defaultRec holds the process-wide Recorder. A nil pointer (the initial
// state) or a stored nil Recorder both mean Nop.
var defaultRec atomic.Pointer[Recorder]

// Default returns the process-wide Recorder (Nop until SetDefault installs
// a live one). The load is a single atomic pointer read, so hot paths call
// it per operation.
func Default() Recorder {
	if p := defaultRec.Load(); p != nil && *p != nil {
		return *p
	}
	return Nop{}
}

// SetDefault installs rec as the process-wide Recorder; nil restores the
// no-op default. Safe to call concurrently with recording — in-flight
// operations finish against the recorder they loaded.
func SetDefault(rec Recorder) {
	if rec == nil {
		defaultRec.Store(nil)
		return
	}
	defaultRec.Store(&rec)
}

// Span measures one stage of a pipeline. The zero Span is a valid no-op,
// so disabled telemetry costs one atomic load and one interface call per
// span — no clock read, no allocation.
type Span struct {
	rec   Recorder
	stage string
	start time.Time
}

// StartStage opens a span against the process-wide recorder. Use this from
// hot paths that carry no context.Context:
//
//	sp := telemetry.StartStage(telemetry.StageGlobalRoute)
//	... stage work ...
//	sp.End()
func StartStage(stage string) Span {
	rec := Default()
	if !rec.Enabled() {
		return Span{}
	}
	return Span{rec: rec, stage: stage, start: time.Now()}
}

// End records the span's elapsed time into MetricStageSeconds under its
// stage label. End on a zero Span is a no-op.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.ObserveDurationLabeled(MetricStageSeconds, LabelStage, s.stage, time.Since(s.start))
}

// ctxKey is the context key type for a per-request Recorder.
type ctxKey struct{}

// NewContext returns a context carrying rec; StartSpan and FromContext
// prefer it over the process default.
func NewContext(ctx context.Context, rec Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext returns the Recorder carried by ctx, falling back to
// Default().
func FromContext(ctx context.Context) Recorder {
	if ctx != nil {
		if rec, ok := ctx.Value(ctxKey{}).(Recorder); ok && rec != nil {
			return rec
		}
	}
	return Default()
}

// StartSpan opens a span against the context's recorder (see StartStage
// for the context-free form):
//
//	ctx, sp := telemetry.StartSpan(ctx, "global_route")
//	defer sp.End()
//
// The returned context is the input context (spans are leaf measurements,
// not a propagated trace tree); it is returned to keep call sites shaped
// like conventional tracing APIs.
func StartSpan(ctx context.Context, stage string) (context.Context, Span) {
	rec := FromContext(ctx)
	if !rec.Enabled() {
		return ctx, Span{}
	}
	return ctx, Span{rec: rec, stage: stage, start: time.Now()}
}
