package telemetry

import (
	"context"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(2.0)
	h.Observe(4.0)
	h.Observe(9.0) // overflow
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count: got %d want 6", s.Count)
	}
	if math.Abs(s.Sum-18.0) > 1e-12 {
		t.Errorf("sum: got %g want 18", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 10)) // bounds 1..10
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + 0.5) // uniform over buckets 1..10
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 4 || p50 > 6 {
		t.Errorf("p50 of uniform[0.5,9.5]: got %g, want ~5", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 9 || p99 > 10 {
		t.Errorf("p99: got %g, want in [9,10]", p99)
	}
	// All mass in one bucket: quantiles interpolate within it.
	h2 := NewHistogram([]float64{1, 2, 3})
	for i := 0; i < 10; i++ {
		h2.Observe(1.5)
	}
	s2 := h2.Snapshot()
	if q := s2.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("single-bucket p50: got %g, want in (1,2]", q)
	}
	// Overflow-only mass reports the largest finite bound.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(100)
	if q := h3.Snapshot().Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile: got %g want 2", q)
	}
	// Empty histogram.
	if q := NewHistogram([]float64{1}).Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile: got %g want 0", q)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(2)
	h.Observe(4)
	if m := h.Snapshot().Mean(); math.Abs(m-3) > 1e-12 {
		t.Errorf("mean: got %g want 3", m)
	}
	if m := NewHistogram([]float64{1}).Snapshot().Mean(); m != 0 {
		t.Errorf("empty mean: got %g want 0", m)
	}
}

func TestBucketPresets(t *testing.T) {
	lin := LinearBuckets(0.05, 0.05, 20)
	if len(lin) != 20 || math.Abs(lin[0]-0.05) > 1e-12 || math.Abs(lin[19]-1.0) > 1e-9 {
		t.Errorf("LinearBuckets: %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExponentialBuckets[%d]: got %g want %g", i, exp[i], want[i])
		}
	}
	lat := LatencyBuckets()
	if lat[0] != 1e-6 || len(lat) != 25 {
		t.Errorf("LatencyBuckets: first=%g len=%d", lat[0], len(lat))
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("LatencyBuckets not ascending at %d", i)
		}
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Count(MetricTrainEpochsTotal, 3)
	r.Count(MetricTrainEpochsTotal, 2)
	if got := r.CounterValue(MetricTrainEpochsTotal, ""); got != 5 {
		t.Errorf("counter: got %d want 5", got)
	}
	r.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 7)
	if got := r.CounterValue(MetricEstimatesTotal, "gl+"); got != 7 {
		t.Errorf("labeled counter: got %d want 7", got)
	}
	r.SetGauge("simquery_test_gauge", 1.5)
	r.SetGauge("simquery_test_gauge", 2.5)
	if got := r.GaugeValue("simquery_test_gauge", ""); got != 2.5 {
		t.Errorf("gauge: got %g want 2.5", got)
	}
}

func TestRegistryHistogramAndDuration(t *testing.T) {
	r := NewRegistry()
	r.ObserveDurationLabeled(MetricStageSeconds, LabelStage, StageGlobalRoute, 2*time.Millisecond)
	snap, ok := r.HistogramSnapshotOf(MetricStageSeconds, StageGlobalRoute)
	if !ok || snap.Count != 1 {
		t.Fatalf("stage histogram missing: ok=%v snap=%+v", ok, snap)
	}
	if math.Abs(snap.Sum-0.002) > 1e-9 {
		t.Errorf("duration sum: got %g want 0.002", snap.Sum)
	}
	r.Observe(MetricRoutingSelectivity, 0.25)
	if snap, ok := r.HistogramSnapshotOf(MetricRoutingSelectivity, ""); !ok || snap.Count != 1 {
		t.Errorf("selectivity histogram: ok=%v snap=%+v", ok, snap)
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 4)
	r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
	r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.002)
	r.Observe(MetricRoutingSelectivity, 0.3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE simquery_estimates_total counter",
		`simquery_estimates_total{method="gl+"} 4`,
		"# TYPE simquery_estimate_latency_seconds histogram",
		`simquery_estimate_latency_seconds_count{method="gl+"} 2`,
		"# TYPE simquery_routing_selectivity histogram",
		"simquery_routing_selectivity_count 1",
		`le="+Inf"`,
		"# HELP simquery_estimate_latency_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Buckets must be cumulative and the +Inf bucket must equal _count.
	var lastCum, count int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `simquery_estimate_latency_seconds_bucket{method="gl+"`) {
			v, err := lastField(line)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < lastCum {
				t.Errorf("buckets not cumulative: %q after %d", line, lastCum)
			}
			lastCum = v
		}
		if strings.HasPrefix(line, `simquery_estimate_latency_seconds_count{method="gl+"}`) {
			v, err := lastField(line)
			if err != nil {
				t.Fatal(err)
			}
			count = v
		}
	}
	if lastCum != count || count != 2 {
		t.Errorf("+Inf bucket %d != count %d (want 2)", lastCum, count)
	}

	// The handler sets the Prometheus text content type.
	rw := httptest.NewRecorder()
	r.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type: %q", ct)
	}
	if rw.Body.Len() == 0 {
		t.Error("empty /metrics body")
	}
}

// lastField parses the last whitespace-separated field of line as an int.
func lastField(line string) (int64, error) {
	fields := strings.Fields(line)
	return strconv.ParseInt(fields[len(fields)-1], 10, 64)
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.CountLabeled("simquery_test_escape_total", "k", "a\"b\\c\nd", 1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `k="a\"b\\c\nd"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			method := []string{"gl+", "mlp", "sampling"}[w%3]
			for i := 0; i < perWorker; i++ {
				r.CountLabeled(MetricEstimatesTotal, LabelMethod, method, 1)
				r.ObserveLabeled(MetricEstimateLatency, LabelMethod, method, float64(i)*1e-6)
				r.Observe(MetricRoutingSelectivity, float64(i%10)/10)
				r.SetGauge("simquery_test_gauge", float64(i))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range []string{"gl+", "mlp", "sampling"} {
		total += r.CounterValue(MetricEstimatesTotal, m)
	}
	if total != workers*perWorker {
		t.Errorf("lost counts: got %d want %d", total, workers*perWorker)
	}
	snap, ok := r.HistogramSnapshotOf(MetricRoutingSelectivity, "")
	if !ok || snap.Count != workers*perWorker {
		t.Errorf("lost observations: ok=%v count=%d want %d", ok, snap.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
}

func TestDefaultRecorderSwap(t *testing.T) {
	if _, ok := Default().(Nop); !ok {
		t.Fatalf("initial default not Nop: %T", Default())
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != Recorder(r) {
		t.Error("SetDefault did not install registry")
	}
	sp := StartStage(StageMerge)
	sp.End()
	if snap, ok := r.HistogramSnapshotOf(MetricStageSeconds, StageMerge); !ok || snap.Count != 1 {
		t.Errorf("span not recorded: ok=%v snap=%+v", ok, snap)
	}
	SetDefault(nil)
	if _, ok := Default().(Nop); !ok {
		t.Errorf("SetDefault(nil) did not restore Nop: %T", Default())
	}
}

func TestSpanContext(t *testing.T) {
	r := NewRegistry()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != Recorder(r) {
		t.Error("FromContext did not return the context recorder")
	}
	if _, ok := FromContext(context.Background()).(Nop); !ok {
		t.Errorf("FromContext without value: %T", FromContext(context.Background()))
	}
	_, sp := StartSpan(ctx, StageFeatureBuild)
	sp.End()
	if snap, ok := r.HistogramSnapshotOf(MetricStageSeconds, StageFeatureBuild); !ok || snap.Count != 1 {
		t.Errorf("context span not recorded: ok=%v snap=%+v", ok, snap)
	}
	// Disabled recorder → zero span, End is a no-op.
	_, sp2 := StartSpan(context.Background(), StageMerge)
	sp2.End()
}

func TestNopZeroAlloc(t *testing.T) {
	SetDefault(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		rec := Default()
		rec.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 1)
		rec.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
		sp := StartStage(StageGlobalRoute)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nop path allocates: %g allocs/op", allocs)
	}
}

func TestRegistrySteadyStateAllocs(t *testing.T) {
	r := NewRegistry()
	// Warm the series so steady state is pure map loads + atomics.
	r.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 1)
	r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
	allocs := testing.AllocsPerRun(1000, func() {
		r.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 1)
		r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
	})
	if allocs != 0 {
		t.Errorf("registry steady state allocates: %g allocs/op", allocs)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CountLabeled(MetricEstimatesTotal, LabelMethod, "gl+", 2)
	r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.004)
	snap := r.ExpvarSnapshot()
	if v, ok := snap[`simquery_estimates_total{method=gl+}`]; !ok || v.(int64) != 2 {
		t.Errorf("expvar counter: %v (ok=%v)", v, ok)
	}
	h, ok := snap[`simquery_estimate_latency_seconds{method=gl+}`].(map[string]any)
	if !ok {
		t.Fatalf("expvar histogram missing: %v", snap)
	}
	if h["count"].(uint64) != 1 {
		t.Errorf("expvar histogram count: %v", h["count"])
	}
	if _, ok := snap["uptime_seconds"]; !ok {
		t.Error("uptime missing")
	}
}

func BenchmarkNopRecorder(b *testing.B) {
	SetDefault(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := Default()
		rec.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
		sp := Span{}
		sp.End()
	}
}

func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry()
	r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.ObserveLabeled(MetricEstimateLatency, LabelMethod, "gl+", 0.001)
		}
	})
}
