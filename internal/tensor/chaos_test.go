package tensor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"simquery/internal/faultinject"
	"simquery/internal/faulttol"
)

// TestChaosPoolPanicIsolation proves the pool's recovery contract: a task
// panic injected at the PoolTask point surfaces on the Do caller as a
// *faulttol.PanicError, every other task of the job still runs, the
// background workers survive, and the pool keeps serving subsequent jobs.
func TestChaosPoolPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	p := NewPool(4)
	defer p.Close()

	faultinject.PoolTask.Set(&faultinject.Plan{PanicOn: 3})
	const n = 64
	var ran atomic.Int64
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				var pe *faulttol.PanicError
				if pe, _ = r.(*faulttol.PanicError); pe == nil {
					t.Fatalf("Do re-panicked with %T, want *faulttol.PanicError", r)
				}
				err = pe
			}
		}()
		p.Do(n, func(task int) { ran.Add(1) })
		return nil
	}()
	if err == nil {
		t.Fatal("Do with injected task panic: panic did not surface at the caller")
	}
	var pe *faulttol.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("surfaced error = %T, want *faulttol.PanicError", err)
	}
	if got, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
		t.Fatalf("panic value = %T, want *faultinject.InjectedPanic", pe.Value)
	} else if got.Point != faultinject.PoolTask.Name() {
		t.Fatalf("panic point = %q", got.Point)
	}
	// Every task except the panicked one ran to completion.
	if got := ran.Load(); got != n-1 {
		t.Fatalf("tasks completed alongside the panic = %d, want %d", got, n-1)
	}

	// The pool is still fully operational: workers survived the panic.
	faultinject.Reset()
	var after atomic.Int64
	p.Do(n, func(task int) { after.Add(1) })
	if got := after.Load(); got != n {
		t.Fatalf("tasks after recovery = %d, want %d", got, n)
	}
}

// TestChaosPoolConcurrentCallersSurvive runs many concurrent Do callers
// while one of them keeps hitting injected panics (probabilistic,
// seed-driven): the panicking jobs fail in isolation, the clean jobs all
// complete, and nothing deadlocks under -race.
func TestChaosPoolConcurrentCallersSurvive(t *testing.T) {
	defer faultinject.Reset()
	p := NewPool(4)
	defer p.Close()
	faultinject.PoolTask.Set(&faultinject.Plan{PanicOn: 1, Prob: 0.2, Seed: 42})

	const callers = 8
	const jobs = 20
	var clean, panicked atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < jobs; j++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.Add(1)
						}
					}()
					p.Do(16, func(int) {})
					clean.Add(1)
				}()
			}
		}()
	}
	wg.Wait()
	if clean.Load()+panicked.Load() != callers*jobs {
		t.Fatalf("jobs accounted = %d clean + %d panicked, want %d total",
			clean.Load(), panicked.Load(), callers*jobs)
	}
	if panicked.Load() == 0 {
		t.Fatal("probabilistic injection (p=0.2 over 2560 tasks) never fired")
	}
	// Pool still serves after the storm.
	faultinject.Reset()
	var after atomic.Int64
	p.Do(32, func(int) { after.Add(1) })
	if after.Load() != 32 {
		t.Fatalf("post-storm job ran %d/32 tasks", after.Load())
	}
}
