package tensor

import (
	"strconv"
	"testing"
)

// FuzzParseWorkers drives arbitrary strings through the worker-count
// parser. Invariants: never panics; a nil error implies a strictly
// positive count; and any accepted value round-trips through its decimal
// rendering to the same count.
func FuzzParseWorkers(f *testing.F) {
	for _, s := range []string{"1", "8", " 16 ", "0", "-3", "", "abc", "1e3", "+7", "0x10", "999999999999999999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseWorkers(s)
		if err != nil {
			if n != 0 {
				t.Fatalf("ParseWorkers(%q): error with nonzero count %d", s, n)
			}
			return
		}
		if n <= 0 {
			t.Fatalf("ParseWorkers(%q) accepted non-positive count %d", s, n)
		}
		rt, err := ParseWorkers(strconv.Itoa(n))
		if err != nil || rt != n {
			t.Fatalf("ParseWorkers(%q) = %d does not round-trip: got %d, err %v", s, n, rt, err)
		}
	})
}
