package tensor

import (
	"fmt"
	"runtime"
)

// GEMM kernels: cache-blocked, register-tiled matrix multiplies. Three
// properties shape the implementation (DESIGN.md §9):
//
//  1. Row invariance. Every output row is computed by arithmetic that
//     depends only on the operand widths (K, N), never on the number of
//     rows or on how a row range was partitioned. Column-lane assignment
//     (which j's go through the 4-wide micro-kernel vs the fringe) depends
//     only on N, and the k-summation order depends only on K. This is what
//     keeps the batched estimate path bitwise identical to the serial one
//     (DESIGN.md §7) even though both now run tiled — and it makes row-block
//     parallelism numerically free.
//
//  2. Multi-accumulator unrolling. The innermost loops carry 4–8
//     independent accumulators so the add chains pipeline instead of
//     serializing on FP latency. The resulting sums are NOT bitwise
//     identical to the seed's single-accumulator loops; kernels are
//     validated against the retained naive references (naive.go) at 1e-9
//     max-abs-diff.
//
//  3. One parallelism budget. Above parallelFLOPs the row range is split
//     into contiguous blocks on the package pool (pool.go) — the same pool
//     the model layer's batched serving path uses — and below it the kernel
//     runs inline with zero allocations.
const (
	// gemmBlockK is the k-panel height: the number of B rows kept hot while
	// one stripe of output rows accumulates.
	gemmBlockK = 128
	// gemmBlockJ is the j-panel width. A full panel is
	// gemmBlockK×gemmBlockJ×8 bytes = 256 KiB — sized for L2.
	gemmBlockJ = 256
	// parallelFLOPs is the 2·M·N·K threshold above which GEMM dispatches
	// row blocks onto the pool. Below it (every single-estimate inference
	// shape) the kernel runs inline and allocation-free. At 8 MFLOP the
	// crossover sits above 256³ minus a panel — dispatch overhead beat the
	// speedup there on the tracked benchmark host.
	parallelFLOPs = 8 << 20
	// gemmMinBlockRows is the coarsest row-block grain: a split never
	// produces blocks shorter than this, so per-task dispatch overhead is
	// amortized over at least 64 output rows of panel-blocked work.
	gemmMinBlockRows = 64
)

// MatMul computes out = a × b. out must be a.Rows × b.Cols and distinct
// from a and b.
func MatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if !gemmParallel(a.Rows, b.Cols, a.Cols) {
		matMulRange(out, a, b, 0, a.Rows)
		return
	}
	matMulPar(*out, *a, *b)
}

// matMulPar takes the matrix headers by value so that MatMul's pointer
// arguments never escape: the closure captures these stack copies (the
// shared Data arrays are already on the heap), keeping small serial
// multiplies — the whole inference path — allocation-free.
func matMulPar(out, a, b Matrix) {
	gemmSplit(a.Rows, func(i0, i1 int) {
		matMulRange(&out, &a, &b, i0, i1)
	})
}

// MatMulTransB computes out = a × bᵀ. out must be a.Rows × b.Rows.
func MatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if !gemmParallel(a.Rows, b.Rows, a.Cols) {
		matMulTransBRange(out, a, b, 0, a.Rows)
		return
	}
	matMulTransBPar(*out, *a, *b)
}

// matMulTransBPar: see matMulPar for why the headers pass by value.
func matMulTransBPar(out, a, b Matrix) {
	gemmSplit(a.Rows, func(i0, i1 int) {
		matMulTransBRange(&out, &a, &b, i0, i1)
	})
}

// MatMulTransA computes out = aᵀ × b. out must be a.Cols × b.Cols.
func MatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if !gemmParallel(a.Cols, b.Cols, a.Rows) {
		matMulTransARange(out, a, b, 0, a.Cols)
		return
	}
	matMulTransAPar(*out, *a, *b)
}

// matMulTransAPar: see matMulPar for why the headers pass by value.
func matMulTransAPar(out, a, b Matrix) {
	gemmSplit(a.Cols, func(i0, i1 int) {
		matMulTransARange(&out, &a, &b, i0, i1)
	})
}

// gemmParallel reports whether a rows×cols×depth GEMM should be split
// across the pool. The entry points keep the serial call direct (no
// closure, so small multiplies — every single-estimate inference shape —
// stay allocation-free) and only build a range closure when this returns
// true.
func gemmParallel(rows, cols, depth int) bool {
	if rows <= 1 {
		return false
	}
	return gemmParallelism() > 1 && 2*rows*cols*depth >= parallelFLOPs
}

// gemmParallelism is the effective GEMM task-count cap: pool workers, but
// never more than GOMAXPROCS. A pool sized above the machine's usable
// cores (SIMQUERY_WORKERS on a constrained host, or a container quota
// below the configured size) cannot run its workers concurrently, so
// splitting that wide only adds dispatch overhead — most visibly on a
// single-core host, where it disables pool dispatch entirely.
func gemmParallelism() int {
	return min(DefaultPool().Workers(), runtime.GOMAXPROCS(0))
}

// gemmSplit partitions the output-row range [0, rows) into contiguous
// blocks claimed from the package pool, at least gemmMinBlockRows tall.
// Because every kernel is row-invariant, the split is unobservable in the
// results.
func gemmSplit(rows int, kernel func(i0, i1 int)) {
	p := DefaultPool()
	tasks := min(gemmParallelism(), (rows+gemmMinBlockRows-1)/gemmMinBlockRows)
	if tasks < 1 {
		tasks = 1
	}
	chunk := (rows + tasks - 1) / tasks
	p.Do(tasks, func(t int) {
		i0 := t * chunk
		i1 := min(i0+chunk, rows)
		if i0 < i1 {
			kernel(i0, i1)
		}
	})
}

// matMulRange computes rows [i0, i1) of out = a × b. Loop order is
// (k-panel, j-panel, row): the gemmBlockK×gemmBlockJ panel of b stays hot
// in cache while every row of the range streams over it. The micro-kernel
// is 2 rows × 4 k-steps: the four b loads per j are shared across both
// output rows (halving b bandwidth) and each output element folds 4
// multiply-adds per load/store. Per-row arithmetic is identical in the
// paired and single-row paths — each row keeps its own accumulation in the
// same k-order — so odd ranges, fringe rows, and any row partition produce
// bitwise-identical rows (the row-invariance contract).
func matMulRange(out, a, b *Matrix, i0, i1 int) {
	K := a.Cols
	n := out.Cols
	for i := i0; i < i1; i++ {
		row := out.Data[i*n:][:n]
		for j := range row {
			row[j] = 0
		}
	}
	for kk := 0; kk < K; kk += gemmBlockK {
		kmax := min(kk+gemmBlockK, K)
		for jj := 0; jj < n; jj += gemmBlockJ {
			w := min(jj+gemmBlockJ, n) - jj
			i := i0
			for ; i+2 <= i1; i += 2 {
				arow0 := a.Data[i*K:][:K]
				arow1 := a.Data[(i+1)*K:][:K]
				orow0 := out.Data[i*n+jj:][:w]
				orow1 := out.Data[(i+1)*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					x0, x1, x2, x3 := arow0[k], arow0[k+1], arow0[k+2], arow0[k+3]
					y0, y1, y2, y3 := arow1[k], arow1[k+1], arow1[k+2], arow1[k+3]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
						orow0[j] += x0*v0 + x1*v1 + x2*v2 + x3*v3
						orow1[j] += y0*v0 + y1*v1 + y2*v2 + y3*v3
					}
				}
				for ; k < kmax; k++ {
					x, y := arow0[k], arow1[k]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow0[j] += x * brow[j]
						orow1[j] += y * brow[j]
					}
				}
			}
			for ; i < i1; i++ {
				arow := a.Data[i*K:][:K]
				orow := out.Data[i*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < kmax; k++ {
					av := arow[k]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransBRange computes rows [i0, i1) of out = a × bᵀ — the inference
// hot path (Dense runs x·Wᵀ). Four rows of b are reduced at once against
// one row of a with two accumulators per output (8 independent FP chains),
// and the column fringe uses dot2, whose summation order matches one
// micro-kernel lane exactly — so an element's value never depends on which
// lane computed it.
func matMulTransBRange(out, a, b *Matrix, i0, i1 int) {
	K := a.Cols
	n := out.Cols
	for i := i0; i < i1; i++ {
		arow := a.Data[i*K:][:K]
		orow := out.Data[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*K:][:K]
			b1 := b.Data[(j+1)*K:][:K]
			b2 := b.Data[(j+2)*K:][:K]
			b3 := b.Data[(j+3)*K:][:K]
			var s0a, s0b, s1a, s1b, s2a, s2b, s3a, s3b float64
			k := 0
			for ; k+2 <= K; k += 2 {
				av0, av1 := arow[k], arow[k+1]
				s0a += av0 * b0[k]
				s0b += av1 * b0[k+1]
				s1a += av0 * b1[k]
				s1b += av1 * b1[k+1]
				s2a += av0 * b2[k]
				s2b += av1 * b2[k+1]
				s3a += av0 * b3[k]
				s3b += av1 * b3[k+1]
			}
			if k < K {
				av := arow[k]
				s0a += av * b0[k]
				s1a += av * b1[k]
				s2a += av * b2[k]
				s3a += av * b3[k]
			}
			orow[j] = s0a + s0b
			orow[j+1] = s1a + s1b
			orow[j+2] = s2a + s2b
			orow[j+3] = s3a + s3b
		}
		for ; j < n; j++ {
			orow[j] = dot2(arow, b.Data[j*K:][:K])
		}
	}
}

// dot2 is the two-accumulator inner product whose summation order is
// bitwise identical to a single lane of the matMulTransBRange micro-kernel.
// It exists so fringe columns (n mod 4) agree exactly with tiled columns.
func dot2(a, b []float64) float64 {
	b = b[:len(a)]
	var sa, sb float64
	k := 0
	for ; k+2 <= len(a); k += 2 {
		sa += a[k] * b[k]
		sb += a[k+1] * b[k+1]
	}
	if k < len(a) {
		sa += a[k] * b[k]
	}
	return sa + sb
}

// matMulTransARange computes rows [i0, i1) of out = aᵀ × b (out rows index
// a's columns). Same panel structure and 2×4 micro-kernel as matMulRange;
// the a loads are column-strided, and pairing output rows i, i+1 makes each
// strided load fetch two adjacent elements from one cache line.
func matMulTransARange(out, a, b *Matrix, i0, i1 int) {
	K := a.Rows
	ac := a.Cols
	n := out.Cols
	for i := i0; i < i1; i++ {
		row := out.Data[i*n:][:n]
		for j := range row {
			row[j] = 0
		}
	}
	for kk := 0; kk < K; kk += gemmBlockK {
		kmax := min(kk+gemmBlockK, K)
		for jj := 0; jj < n; jj += gemmBlockJ {
			w := min(jj+gemmBlockJ, n) - jj
			i := i0
			for ; i+2 <= i1; i += 2 {
				orow0 := out.Data[i*n+jj:][:w]
				orow1 := out.Data[(i+1)*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					x0, y0 := a.Data[k*ac+i], a.Data[k*ac+i+1]
					x1, y1 := a.Data[(k+1)*ac+i], a.Data[(k+1)*ac+i+1]
					x2, y2 := a.Data[(k+2)*ac+i], a.Data[(k+2)*ac+i+1]
					x3, y3 := a.Data[(k+3)*ac+i], a.Data[(k+3)*ac+i+1]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
						orow0[j] += x0*v0 + x1*v1 + x2*v2 + x3*v3
						orow1[j] += y0*v0 + y1*v1 + y2*v2 + y3*v3
					}
				}
				for ; k < kmax; k++ {
					x, y := a.Data[k*ac+i], a.Data[k*ac+i+1]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow0[j] += x * brow[j]
						orow1[j] += y * brow[j]
					}
				}
			}
			for ; i < i1; i++ {
				orow := out.Data[i*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					a0 := a.Data[k*ac+i]
					a1 := a.Data[(k+1)*ac+i]
					a2 := a.Data[(k+2)*ac+i]
					a3 := a.Data[(k+3)*ac+i]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < kmax; k++ {
					av := a.Data[k*ac+i]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}
