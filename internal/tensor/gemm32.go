package tensor

import (
	"fmt"
	"sync"
)

// Float32 GEMM kernels (DESIGN.md §14). Same cache-blocked, register-tiled
// skeleton as gemm.go, with two deliberate departures the relaxed f32
// numerical contract (1e-5 rel vs the Naive32 oracles, not bitwise row
// invariance) makes legal:
//
//  1. Coarser row-block grain. f32 halves the per-element memory traffic,
//     so a row block must be taller before its work amortizes one pool
//     dispatch; the floor is gemmMinBlockRows32 (128 rows), re-tuned
//     against measured dispatch cost on the benchmark host (see DESIGN.md
//     §14 for the measurement).
//
//  2. Per-worker C-panel accumulation. When the coarse grain leaves fewer
//     row blocks than workers (256³ at 4 workers: two 128-row blocks), the
//     multiply splits over K instead: each worker accumulates its K-slice
//     of the full product into a private C panel, and the panels are summed
//     into out serially in ascending worker order afterwards. The sum order
//     is a function of (K, task count) only, so results are deterministic
//     for a fixed pool size — but K-partitioned summation is exactly what
//     the f64 row-invariance contract forbids, which is why this path
//     exists only on the f32 plane.
const (
	// gemmBlockJ32 is the f32 j-panel width: gemmBlockK×gemmBlockJ32×4
	// bytes = 256 KiB, the same L2 footprint as the f64 panel.
	gemmBlockJ32 = 512
	// parallelFLOPs32 is the dispatch threshold for f32 GEMMs. f32 panels
	// run ~2× faster per FLOP than f64 (half the bandwidth), so the FLOP
	// count that amortizes one pool dispatch is about twice the f64
	// crossover — but the coarser row grain already suppresses tiny splits,
	// and measurement put the profitable crossover near 16 MFLOP (≈200³).
	parallelFLOPs32 = 16 << 20
	// gemmMinBlockRows32 is the f32 row-block floor — twice the f64 grain,
	// because each f32 row carries half the bytes (and roughly half the
	// work) of an f64 row at equal width.
	gemmMinBlockRows32 = 128
)

// MatMul32 computes out = a × b in float32. out must be a.Rows × b.Cols and
// distinct from a and b.
func MatMul32(out, a, b *Matrix32) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul32 shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if !gemmParallel32(a.Rows, b.Cols, a.Cols) {
		matMulRange32(out, a, b, 0, a.Rows)
		return
	}
	matMulPar32(*out, *a, *b)
}

// gemmParallel32 is gemmParallel with the f32 thresholds.
func gemmParallel32(rows, cols, depth int) bool {
	if rows <= 1 {
		return false
	}
	return gemmParallelism() > 1 && 2*rows*cols*depth >= parallelFLOPs32
}

// matMulPar32 dispatches a large f32 multiply onto the pool. Headers pass
// by value for the same escape reason as matMulPar. Row blocks are
// preferred while every worker can be fed a block at least
// gemmMinBlockRows32 tall; below that the K dimension is split with
// per-worker C panels (cPanelSplit32).
func matMulPar32(out, a, b Matrix32) {
	par := gemmParallelism()
	if a.Rows/gemmMinBlockRows32 >= par || a.Cols < 2*gemmBlockK {
		gemmSplit32(a.Rows, func(i0, i1 int) {
			matMulRange32(&out, &a, &b, i0, i1)
		})
		return
	}
	cPanelSplit32(&out, a.Cols, par, func(panel *Matrix32, k0, k1 int) {
		matMulKPanel32(panel, &a, &b, 0, a.Rows, k0, k1)
	})
}

// gemmSplit32 is gemmSplit at the coarser f32 grain.
func gemmSplit32(rows int, kernel func(i0, i1 int)) {
	p := DefaultPool()
	tasks := min(gemmParallelism(), (rows+gemmMinBlockRows32-1)/gemmMinBlockRows32)
	if tasks < 1 {
		tasks = 1
	}
	chunk := (rows + tasks - 1) / tasks
	p.Do(tasks, func(t int) {
		i0 := t * chunk
		i1 := min(i0+chunk, rows)
		if i0 < i1 {
			kernel(i0, i1)
		}
	})
}

// cPanels recycles the private accumulation panels the K-split path hands
// each worker, so repeated large multiplies don't churn the GC.
var cPanels = sync.Pool{New: func() any { return &Matrix32{} }}

// cPanelSplit32 runs the K-split schedule: K is cut into at most par
// contiguous slices (each at least gemmBlockK deep), every worker
// accumulates its slice of the product into a private zeroed C panel, and
// the panels are folded into out serially in ascending task order. The fold
// order depends only on (K, task count) — deterministic for a fixed pool
// size, but not bitwise equal to the serial kernel, which is why only the
// f32 plane (tolerance contract) uses it.
func cPanelSplit32(out *Matrix32, K, par int, kernel func(panel *Matrix32, k0, k1 int)) {
	tasks := min(par, K/gemmBlockK)
	if tasks < 2 {
		kernel(out, 0, K)
		return
	}
	chunk := (K + tasks - 1) / tasks
	panels := make([]*Matrix32, tasks)
	n := out.Rows * out.Cols
	for t := range panels {
		p := cPanels.Get().(*Matrix32)
		if cap(p.Data) < n {
			p.Data = make([]float32, n)
		}
		p.Data = p.Data[:n]
		p.Rows, p.Cols = out.Rows, out.Cols
		panels[t] = p
	}
	DefaultPool().Do(tasks, func(t int) {
		k0 := t * chunk
		k1 := min(k0+chunk, K)
		panels[t].Zero()
		if k0 < k1 {
			kernel(panels[t], k0, k1)
		}
	})
	copy(out.Data, panels[0].Data)
	for t := 1; t < tasks; t++ {
		AddTo32(out.Data, panels[t].Data)
	}
	for _, p := range panels {
		cPanels.Put(p)
	}
}

// matMulRange32 computes rows [i0, i1) of out = a × b: zero, then
// accumulate the full K range.
func matMulRange32(out, a, b *Matrix32, i0, i1 int) {
	n := out.Cols
	for i := i0; i < i1; i++ {
		row := out.Data[i*n:][:n]
		for j := range row {
			row[j] = 0
		}
	}
	matMulKPanel32(out, a, b, i0, i1, 0, a.Cols)
}

// matMulKPanel32 accumulates out[i0:i1] += a[i0:i1, k0:k1] × b[k0:k1] with
// the gemm.go panel structure (k-panel, j-panel, 2-row × 4-k micro-kernel).
// out is NOT zeroed here — matMulRange32 zeroes for the serial/row-split
// paths, and cPanelSplit32 hands in zeroed private panels.
func matMulKPanel32(out, a, b *Matrix32, i0, i1, k0, k1 int) {
	K := a.Cols
	n := out.Cols
	for kk := k0; kk < k1; kk += gemmBlockK {
		kmax := min(kk+gemmBlockK, k1)
		for jj := 0; jj < n; jj += gemmBlockJ32 {
			w := min(jj+gemmBlockJ32, n) - jj
			i := i0
			for ; i+2 <= i1; i += 2 {
				arow0 := a.Data[i*K:][:K]
				arow1 := a.Data[(i+1)*K:][:K]
				orow0 := out.Data[i*n+jj:][:w]
				orow1 := out.Data[(i+1)*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					x0, x1, x2, x3 := arow0[k], arow0[k+1], arow0[k+2], arow0[k+3]
					y0, y1, y2, y3 := arow1[k], arow1[k+1], arow1[k+2], arow1[k+3]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
						orow0[j] += x0*v0 + x1*v1 + x2*v2 + x3*v3
						orow1[j] += y0*v0 + y1*v1 + y2*v2 + y3*v3
					}
				}
				for ; k < kmax; k++ {
					x, y := arow0[k], arow1[k]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow0[j] += x * brow[j]
						orow1[j] += y * brow[j]
					}
				}
			}
			for ; i < i1; i++ {
				arow := a.Data[i*K:][:K]
				orow := out.Data[i*n+jj:][:w]
				k := kk
				for ; k+4 <= kmax; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					b0 := b.Data[k*n+jj:][:w]
					b1 := b.Data[(k+1)*n+jj:][:w]
					b2 := b.Data[(k+2)*n+jj:][:w]
					b3 := b.Data[(k+3)*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < kmax; k++ {
					av := arow[k]
					brow := b.Data[k*n+jj:][:w]
					for j := 0; j < w; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatMulTransB32 computes out = a × bᵀ in float32 — the f32 inference hot
// path (dense32 runs x·Wᵀ). out must be a.Rows × b.Rows.
func MatMulTransB32(out, a, b *Matrix32) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB32 shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if !gemmParallel32(a.Rows, b.Rows, a.Cols) {
		matMulTransBRange32(out, a, b, 0, a.Rows)
		return
	}
	matMulTransBPar32(*out, *a, *b)
}

// matMulTransBPar32 row-splits at the coarse f32 grain. The TransB kernel
// reduces full-K dots per output element, so there is no K-split variant:
// the batched inference shapes that reach it are row-rich (batch rows),
// never row-starved like a square 256³ product.
func matMulTransBPar32(out, a, b Matrix32) {
	gemmSplit32(a.Rows, func(i0, i1 int) {
		matMulTransBRange32(&out, &a, &b, i0, i1)
	})
}

// matMulTransBRange32 mirrors matMulTransBRange: four b rows × two
// accumulators per output (8 FP chains), dot232 fringe matching one
// micro-kernel lane.
func matMulTransBRange32(out, a, b *Matrix32, i0, i1 int) {
	K := a.Cols
	n := out.Cols
	for i := i0; i < i1; i++ {
		arow := a.Data[i*K:][:K]
		orow := out.Data[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*K:][:K]
			b1 := b.Data[(j+1)*K:][:K]
			b2 := b.Data[(j+2)*K:][:K]
			b3 := b.Data[(j+3)*K:][:K]
			var s0a, s0b, s1a, s1b, s2a, s2b, s3a, s3b float32
			k := 0
			for ; k+2 <= K; k += 2 {
				av0, av1 := arow[k], arow[k+1]
				s0a += av0 * b0[k]
				s0b += av1 * b0[k+1]
				s1a += av0 * b1[k]
				s1b += av1 * b1[k+1]
				s2a += av0 * b2[k]
				s2b += av1 * b2[k+1]
				s3a += av0 * b3[k]
				s3b += av1 * b3[k+1]
			}
			if k < K {
				av := arow[k]
				s0a += av * b0[k]
				s1a += av * b1[k]
				s2a += av * b2[k]
				s3a += av * b3[k]
			}
			orow[j] = s0a + s0b
			orow[j+1] = s1a + s1b
			orow[j+2] = s2a + s2b
			orow[j+3] = s3a + s3b
		}
		for ; j < n; j++ {
			orow[j] = dot232(arow, b.Data[j*K:][:K])
		}
	}
}

// dot232 is dot2 in float32: the two-accumulator inner product matching one
// lane of the matMulTransBRange32 micro-kernel.
func dot232(a, b []float32) float32 {
	b = b[:len(a)]
	var sa, sb float32
	k := 0
	for ; k+2 <= len(a); k += 2 {
		sa += a[k] * b[k]
		sb += a[k+1] * b[k+1]
	}
	if k < len(a) {
		sa += a[k] * b[k]
	}
	return sa + sb
}

// NaiveMatMul32 computes out = a × b with the scalar triple loop — the f32
// correctness oracle (1e-5 rel).
func NaiveMatMul32(out, a, b *Matrix32) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul32 shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// NaiveMatMulTransB32 computes out = a × bᵀ with per-element scalar dots.
func NaiveMatMulTransB32(out, a, b *Matrix32) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB32 shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			out.Data[i*out.Cols+j] = NaiveDot32(arow, b.Data[j*b.Cols:(j+1)*b.Cols])
		}
	}
}

// NaiveDot32 is the single-accumulator float32 inner product.
func NaiveDot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
