package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// kernelShapes covers every tile/fringe case of the blocked kernels: unit,
// primes (no dimension a multiple of the unroll widths), non-multiple-of-4
// column counts, tall, wide, and panel-boundary sizes straddling gemmBlockK
// and gemmBlockJ.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 4, 1},
	{2, 3, 5},
	{7, 11, 13},
	{3, 17, 6},
	{5, 8, 9},   // n ≡ 1 (mod 4)
	{5, 8, 10},  // n ≡ 2 (mod 4)
	{5, 8, 11},  // n ≡ 3 (mod 4)
	{4, 5, 12},  // odd K for the TransB pair loop
	{64, 1, 64}, // degenerate depth
	{1, 64, 64},
	{200, 3, 2}, // tall
	{2, 3, 200}, // wide
	{6, 130, 7}, // K straddles gemmBlockK
	{6, 256, 9}, // K = 2 panels exactly
	{3, 5, 300}, // N straddles gemmBlockJ
	{33, 129, 257},
}

const kernelTol = 1e-9

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestKernelMatMulMatchesNaive validates the tiled kernels against the
// naive references at 1e-9 over every tile/fringe shape, for both the
// serial path and a forced multi-worker pool.
func TestKernelMatMulMatchesNaive(t *testing.T) {
	defer SetPoolSize(0)
	for _, workers := range []int{1, 4} {
		SetPoolSize(workers)
		for _, s := range kernelShapes {
			t.Run(fmt.Sprintf("w%d/%dx%dx%d", workers, s.m, s.k, s.n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(s.m*1000 + s.k*100 + s.n)))
				a := randMatrix(rng, s.m, s.k)
				b := randMatrix(rng, s.k, s.n)
				bt := randMatrix(rng, s.n, s.k)

				got := NewMatrix(s.m, s.n)
				want := NewMatrix(s.m, s.n)
				MatMul(got, a, b)
				NaiveMatMul(want, a, b)
				if d := maxAbsDiff(got.Data, want.Data); d > kernelTol {
					t.Errorf("MatMul max-abs-diff %g > %g", d, kernelTol)
				}

				MatMulTransB(got, a, bt)
				NaiveMatMulTransB(want, a, bt)
				if d := maxAbsDiff(got.Data, want.Data); d > kernelTol {
					t.Errorf("MatMulTransB max-abs-diff %g > %g", d, kernelTol)
				}

				// aᵀ·b with a as the k×m operand.
				at := randMatrix(rng, s.k, s.m)
				MatMulTransA(got, at, b)
				NaiveMatMulTransA(want, at, b)
				if d := maxAbsDiff(got.Data, want.Data); d > kernelTol {
					t.Errorf("MatMulTransA max-abs-diff %g > %g", d, kernelTol)
				}
			})
		}
	}
}

// TestKernelSparseMatchesDense checks the explicit sparse entry points
// against the naive references on ReLU-style half-zero operands.
func TestKernelSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		a := randMatrix(rng, s.m, s.k)
		for i := range a.Data {
			if rng.Intn(2) == 0 {
				a.Data[i] = 0
			}
		}
		b := randMatrix(rng, s.k, s.n)
		got := NewMatrix(s.m, s.n)
		want := NewMatrix(s.m, s.n)
		MatMulSparseA(got, a, b)
		NaiveMatMul(want, a, b)
		if d := maxAbsDiff(got.Data, want.Data); d > kernelTol {
			t.Errorf("MatMulSparseA %dx%dx%d max-abs-diff %g", s.m, s.k, s.n, d)
		}

		at := randMatrix(rng, s.k, s.m)
		for i := range at.Data {
			if rng.Intn(2) == 0 {
				at.Data[i] = 0
			}
		}
		MatMulTransASparse(got, at, b)
		NaiveMatMulTransA(want, at, b)
		if d := maxAbsDiff(got.Data, want.Data); d > kernelTol {
			t.Errorf("MatMulTransASparse %dx%dx%d max-abs-diff %g", s.m, s.k, s.n, d)
		}
	}
}

// TestKernelVectorOpsMatchNaive validates the unrolled vector kernels at
// awkward lengths (0..9, 63, 64, 65, 127).
func TestKernelVectorOpsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 63, 64, 65, 127}
	for _, n := range lengths {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if d := math.Abs(Dot(x, y) - NaiveDot(x, y)); d > kernelTol {
			t.Errorf("Dot len %d diff %g", n, d)
		}
		var wantSum float64
		for _, v := range x {
			wantSum += v
		}
		if d := math.Abs(Sum(x) - wantSum); d > kernelTol {
			t.Errorf("Sum len %d diff %g", n, d)
		}
		wantAxpy := append([]float64(nil), y...)
		for i := range wantAxpy {
			wantAxpy[i] += 0.5 * x[i]
		}
		gotAxpy := append([]float64(nil), y...)
		Axpy(0.5, x, gotAxpy)
		if n > 0 && maxAbsDiff(gotAxpy, wantAxpy) > kernelTol {
			t.Errorf("Axpy len %d diverged", n)
		}
		gotAdd := append([]float64(nil), y...)
		AddTo(gotAdd, x)
		for i := range gotAdd {
			if gotAdd[i] != y[i]+x[i] {
				t.Errorf("AddTo len %d index %d", n, i)
			}
		}
		gotScale := append([]float64(nil), x...)
		Scale(1.25, gotScale)
		for i := range gotScale {
			if gotScale[i] != 1.25*x[i] {
				t.Errorf("Scale len %d index %d", n, i)
			}
		}
	}
}

// TestKernelRowInvariance asserts the bitwise contract that makes batching
// and row-block parallelism unobservable: row i of a B-row batch equals the
// 1-row product of that row alone, exactly, for every kernel and for both
// serial and pooled execution.
func TestKernelRowInvariance(t *testing.T) {
	defer SetPoolSize(0)
	rng := rand.New(rand.NewSource(13))
	const rows, k, n = 37, 29, 23
	a := randMatrix(rng, rows, k)
	b := randMatrix(rng, k, n)
	bt := randMatrix(rng, n, k)
	for _, workers := range []int{1, 4} {
		SetPoolSize(workers)
		batch := NewMatrix(rows, n)
		MatMul(batch, a, b)
		batchT := NewMatrix(rows, n)
		MatMulTransB(batchT, a, bt)
		single := NewMatrix(1, n)
		arow := &Matrix{Rows: 1, Cols: k}
		for i := 0; i < rows; i++ {
			arow.Data = a.Row(i)
			MatMul(single, arow, b)
			for j := 0; j < n; j++ {
				if single.Data[j] != batch.At(i, j) {
					t.Fatalf("w%d MatMul row %d col %d: batch not bitwise equal to single row", workers, i, j)
				}
			}
			MatMulTransB(single, arow, bt)
			for j := 0; j < n; j++ {
				if single.Data[j] != batchT.At(i, j) {
					t.Fatalf("w%d MatMulTransB row %d col %d: batch not bitwise equal to single row", workers, i, j)
				}
			}
		}
	}
}

// TestKernelPoolSerialBitwiseEqual asserts pooled and serial runs of the
// same large multiply agree bitwise (row partitioning never changes any
// row's arithmetic).
func TestKernelPoolSerialBitwiseEqual(t *testing.T) {
	defer SetPoolSize(0)
	rng := rand.New(rand.NewSource(17))
	// Large enough to cross parallelFLOPs: 2·160·160·90 ≈ 4.6M.
	a := randMatrix(rng, 160, 90)
	b := randMatrix(rng, 90, 160)
	bt := randMatrix(rng, 160, 90)
	serialM := NewMatrix(160, 160)
	serialT := NewMatrix(160, 160)
	SetPoolSize(1)
	MatMul(serialM, a, b)
	MatMulTransB(serialT, a, bt)
	SetPoolSize(4)
	pooledM := NewMatrix(160, 160)
	pooledT := NewMatrix(160, 160)
	MatMul(pooledM, a, b)
	MatMulTransB(pooledT, a, bt)
	for i := range serialM.Data {
		if serialM.Data[i] != pooledM.Data[i] {
			t.Fatalf("MatMul: pooled differs from serial at %d", i)
		}
		if serialT.Data[i] != pooledT.Data[i] {
			t.Fatalf("MatMulTransB: pooled differs from serial at %d", i)
		}
	}
}

// TestKernelNoAllocsSerial locks in the allocation-free serial path for the
// inference-sized shapes (this is what keeps the estimate path at ≤2
// allocs).
func TestKernelNoAllocsSerial(t *testing.T) {
	defer SetPoolSize(0)
	SetPoolSize(4) // even with a live pool, sub-threshold ops must not allocate
	a := NewMatrix(8, 64)
	b := NewMatrix(64, 32)
	bt := NewMatrix(32, 64)
	o := NewMatrix(8, 32)
	if n := testing.AllocsPerRun(100, func() { MatMul(o, a, b) }); n > 0 {
		t.Errorf("MatMul allocates %.1f/op on the serial path", n)
	}
	if n := testing.AllocsPerRun(100, func() { MatMulTransB(o, a, bt) }); n > 0 {
		t.Errorf("MatMulTransB allocates %.1f/op on the serial path", n)
	}
	at := NewMatrix(64, 8)
	if n := testing.AllocsPerRun(100, func() { MatMulTransA(o, at, b) }); n > 0 {
		t.Errorf("MatMulTransA allocates %.1f/op on the serial path", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = Dot(a.Data, a.Data) }); n > 0 {
		t.Errorf("Dot allocates %.1f/op", n)
	}
}

func benchGEMM(b *testing.B, dim int, workers int, fn func(out, x, y *Matrix)) {
	b.Helper()
	defer SetPoolSize(0)
	SetPoolSize(workers)
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, dim, dim)
	y := randMatrix(rng, dim, dim)
	out := NewMatrix(dim, dim)
	b.SetBytes(int64(8 * dim * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(out, x, y)
	}
	flops := 2 * float64(dim) * float64(dim) * float64(dim)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLOPS")
}

// defaultWorkers is EnvWorkers for benchmarks, which have no error channel.
func defaultWorkers() int {
	n, _ := EnvWorkers()
	return n
}

func BenchmarkGEMMNaive256(b *testing.B)       { benchGEMM(b, 256, 1, NaiveMatMul) }
func BenchmarkGEMMTiled256(b *testing.B)       { benchGEMM(b, 256, 1, MatMul) }
func BenchmarkGEMMTiledPool256(b *testing.B)   { benchGEMM(b, 256, defaultWorkers(), MatMul) }
func BenchmarkGEMMNaive512(b *testing.B)       { benchGEMM(b, 512, 1, NaiveMatMul) }
func BenchmarkGEMMTiled512(b *testing.B)       { benchGEMM(b, 512, 1, MatMul) }
func BenchmarkGEMMTiledPool512(b *testing.B)   { benchGEMM(b, 512, defaultWorkers(), MatMul) }
func BenchmarkGEMMTransBNaive256(b *testing.B) { benchGEMM(b, 256, 1, NaiveMatMulTransB) }
func BenchmarkGEMMTransBTiled256(b *testing.B) { benchGEMM(b, 256, 1, MatMulTransB) }
func BenchmarkGEMMTransANaive256(b *testing.B) { benchGEMM(b, 256, 1, NaiveMatMulTransA) }
func BenchmarkGEMMTransATiled256(b *testing.B) { benchGEMM(b, 256, 1, MatMulTransA) }
