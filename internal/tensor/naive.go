package tensor

import "fmt"

// Naive reference kernels and explicit sparse entry points.
//
// NaiveMatMul/NaiveMatMulTransA/NaiveMatMulTransB are the seed's scalar
// triple-loop kernels, retained verbatim (minus the per-element zero-skip,
// which moved to the Sparse variants below). They are the correctness
// oracle for the tiled kernels — property tests compare every tiled shape
// against them at 1e-9 max-abs-diff — and the baseline the kernel
// benchmarks (cmd/simbench -kernels) report speedups against. They are not
// called on any hot path.
//
// The seed kernels also carried an `if av == 0 { continue }` branch inside
// MatMul and MatMulTransA. On dense data that is a mispredicted branch per
// element for nothing, so the dense kernels drop it; the cases where it
// genuinely pays — gradient matrices gated to exact zeros by ReLU during
// backprop — now opt in explicitly through MatMulSparseA and
// MatMulTransASparse (nn.Dense.Backward does).

// NaiveMatMul computes out = a × b with the plain scalar triple loop.
func NaiveMatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// NaiveMatMulTransB computes out = a × bᵀ with per-element scalar dots.
func NaiveMatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			out.Data[i*out.Cols+j] = NaiveDot(arow, brow)
		}
	}
}

// NaiveMatMulTransA computes out = aᵀ × b with the plain scalar triple
// loop.
func NaiveMatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// NaiveDot is the single-accumulator inner product (the seed Dot).
func NaiveDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// MatMulSparseA computes out = a × b, skipping exact zeros of a — the
// seed's sparse-skip kernel as an explicit entry point. Worth it only when
// a is substantially zero (e.g. gradients gated by ReLU in backprop); on
// dense operands use MatMul, which drops the per-element branch and tiles.
func MatMulSparseA(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			Axpy(av, brow, orow)
		}
	}
}

// MatMulTransASparse computes out = aᵀ × b, skipping exact zeros of a (see
// MatMulSparseA).
func MatMulTransASparse(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, brow, out.Data[i*out.Cols:(i+1)*out.Cols])
		}
	}
}
