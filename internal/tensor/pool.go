package tensor

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"

	"simquery/internal/faultinject"
	"simquery/internal/faulttol"
	"simquery/internal/reqtrace"
	"simquery/internal/telemetry"
)

// Pool is a persistent worker pool for data-parallel kernels. It is the
// single parallelism budget of the serving engine: GEMM row blocks
// (gemmDispatch) and the model layer's batched per-segment evaluation both
// draw from the same pool, so concurrent callers share one set of workers
// instead of stacking ad-hoc goroutine fan-outs.
//
// The scheduling discipline is caller-participation: Do offers the job to
// idle workers without ever blocking, then the calling goroutine claims
// tasks itself until none remain. Two properties follow:
//
//   - No deadlock under nesting. A Do issued from inside a pool task (a
//     batched estimate whose local-model GEMMs cross the parallel
//     threshold) always completes, because the caller alone can drain the
//     whole job; busy workers just mean less help.
//   - Graceful saturation. When every worker is occupied, additional Do
//     callers degrade to inline execution at zero coordination cost.
//
// Workers that pick up a job each run their share of tasks; per-goroutine
// scratch arenas are reused through the existing sync.Pool-based Scratch
// pools of the nn/model layers (each participating goroutine checks one
// out per task batch), so the pool adds no second arena-pooling scheme.
type Pool struct {
	workers int
	jobs    chan *job
	active  atomic.Int64 // participants currently inside a parallel region
}

// job is one parallel-for: tasks [0, n) claimed by atomic increment. fin
// closes when the last claimed task finishes, which may be before stale
// offers are drained from the jobs channel — late workers see next ≥ n and
// return immediately. pan holds the first task panic, recovered so that a
// crashing task can neither kill a background worker goroutine (which
// would take the process down) nor leave fin unclosed (which would
// deadlock Do); Do re-raises it on the calling goroutine once every task
// has finished.
type job struct {
	fn   func(task int)
	n    int64
	next atomic.Int64
	done atomic.Int64
	fin  chan struct{}
	pan  atomic.Pointer[faulttol.PanicError]
}

// NewPool starts a pool with the given worker count (minimum 1). A pool of
// one worker runs everything inline on the caller — no goroutines are
// spawned. workers-1 background goroutines serve larger pools; the
// submitting caller is always the final participant.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, jobs: make(chan *job, workers)}
	for w := 0; w < workers-1; w++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool's configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the background workers after they drain outstanding jobs.
// It must not race with Do on the same pool; intended for tests and for
// pools being replaced at startup.
func (p *Pool) Close() { close(p.jobs) }

// worker is the background loop: claim tasks from whatever job arrives.
func (p *Pool) worker() {
	for j := range p.jobs {
		p.participate(j)
	}
}

// participate claims and runs tasks of j until none remain, maintaining
// the utilization gauge when telemetry is live.
func (p *Pool) participate(j *job) {
	rec := telemetry.Default()
	enabled := rec.Enabled()
	if enabled {
		rec.SetGauge(telemetry.MetricPoolUtilization, float64(p.active.Add(1))/float64(p.workers))
	}
	for {
		t := j.next.Add(1) - 1
		if t >= j.n {
			break
		}
		p.runTask(j, int(t))
	}
	if enabled {
		rec.SetGauge(telemetry.MetricPoolUtilization, float64(p.active.Add(-1))/float64(p.workers))
	}
}

// runTask executes one task of j, recovering a panic so the worker
// goroutine survives and the job still completes. The first panic is kept
// (as a *faulttol.PanicError with the stack from the panic site) and
// re-raised by Do on the calling goroutine; later panics from concurrent
// tasks are recovered and dropped.
func (p *Pool) runTask(j *job, t int) {
	defer func() {
		if r := recover(); r != nil {
			j.pan.CompareAndSwap(nil, faulttol.Recovered(r))
		}
		if j.done.Add(1) == j.n {
			close(j.fin)
		}
	}()
	if faultinject.Armed() {
		faultinject.PoolTask.Fire()
	}
	j.fn(t)
}

// Do runs fn(0) … fn(n-1), in parallel across the pool when it has more
// than one worker. Tasks may run in any order and concurrently; fn must be
// safe for that. Do returns when every task has finished. A nil pool, a
// single-worker pool, or n ≤ 1 runs inline with no allocation.
//
// If a task panics, the panic is re-raised on the calling goroutine (as a
// *faulttol.PanicError) after all other tasks finish — background workers
// and concurrent Do callers are never taken down by one bad task.
func (p *Pool) Do(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p == nil || p.workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	rec := telemetry.Default()
	if rec.Enabled() {
		rec.Count(telemetry.MetricPoolDispatchTotal, 1)
		rec.SetGauge(telemetry.MetricPoolWorkers, float64(p.workers))
	}
	j := &job{fn: fn, n: int64(n), fin: make(chan struct{})}
	// Offer the job to idle workers; never block — a full channel means the
	// pool is saturated and the caller simply does more of the work itself.
	offers := min(p.workers-1, n-1)
offer:
	for o := 0; o < offers; o++ {
		select {
		case p.jobs <- j:
		default:
			break offer
		}
	}
	p.participate(j)
	<-j.fin
	if pe := j.pan.Load(); pe != nil {
		panic(pe)
	}
}

// DoCtx is Do with flight-recorder attribution: when ctx carries a
// sampled reqtrace.Trace, the pooled region's wall time accumulates into
// StagePool and the task count into PoolTasks. An untraced context (the
// common case) costs one context value lookup and falls straight through
// to Do.
func (p *Pool) DoCtx(ctx context.Context, n int, fn func(task int)) {
	tr := reqtrace.FromContext(ctx)
	if tr == nil {
		p.Do(n, fn)
		return
	}
	st := tr.StartStage(reqtrace.StagePool)
	tr.AddPoolTasks(n)
	defer st.End()
	p.Do(n, fn)
}

// defPool is the lazily created package-level pool.
var defPool atomic.Pointer[Pool]

// DefaultPool returns the package-level pool, creating it on first use
// with EnvWorkers() workers. The lazy default cannot refuse a bad
// SIMQUERY_WORKERS value (there is no error channel here), so it falls
// back to GOMAXPROCS; serving binaries call SetPoolSize at startup, which
// does reject garbage with a clear error.
func DefaultPool() *Pool {
	if p := defPool.Load(); p != nil {
		return p
	}
	n, _ := EnvWorkers()
	p := NewPool(n)
	if defPool.CompareAndSwap(nil, p) {
		return p
	}
	p.Close()
	return defPool.Load()
}

// SetPoolSize replaces the package-level pool with one of n workers (n ≤ 0
// resolves through EnvWorkers) and returns the effective size. An invalid
// SIMQUERY_WORKERS value is an error — the pool is left unchanged rather
// than silently misconfigured. Intended for process startup (the cmd
// -workers flags call it before serving); the previous pool is abandoned,
// not closed, so callers racing with the swap finish safely on it.
func SetPoolSize(n int) (int, error) {
	if n <= 0 {
		var err error
		if n, err = EnvWorkers(); err != nil {
			return 0, err
		}
	}
	p := NewPool(n)
	defPool.Store(p)
	return p.workers, nil
}

// PoolSize reports the package-level pool's worker count.
func PoolSize() int { return DefaultPool().Workers() }

// ParseWorkers validates a worker-count setting: a positive decimal
// integer.
func ParseWorkers(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("tensor: invalid worker count %q: want a positive integer", s)
	}
	return n, nil
}

// EnvWorkers resolves the default worker count: SIMQUERY_WORKERS when set,
// else GOMAXPROCS. A non-positive or garbage SIMQUERY_WORKERS returns
// GOMAXPROCS together with a descriptive error so callers with an error
// channel (SetPoolSize, the CLI startup paths) can reject it instead of
// silently misconfiguring the pool.
func EnvWorkers() (int, error) {
	if s := os.Getenv("SIMQUERY_WORKERS"); s != "" {
		n, err := ParseWorkers(s)
		if err != nil {
			return runtime.GOMAXPROCS(0), fmt.Errorf("SIMQUERY_WORKERS: %w", err)
		}
		return n, nil
	}
	return runtime.GOMAXPROCS(0), nil
}
