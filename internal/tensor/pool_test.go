package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"simquery/internal/telemetry"
)

// TestKernelPoolDo checks every task runs exactly once across worker
// counts, task counts, and the inline fast paths.
func TestKernelPoolDo(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			counts := make([]atomic.Int64, max(n, 1))
			p.Do(n, func(task int) {
				counts[task].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

// TestKernelPoolNestedDo verifies Do issued from inside a pool task
// completes (caller participation makes nesting deadlock-free).
func TestKernelPoolNestedDo(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.Do(8, func(outer int) {
		p.Do(8, func(inner int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested Do ran %d inner tasks, want 64", got)
	}
}

// TestKernelPoolConcurrentDo hammers one pool from many goroutines (run
// with -race).
func TestKernelPoolConcurrentDo(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				p.Do(10, func(task int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 16*50*10 {
		t.Fatalf("ran %d tasks, want %d", got, 16*50*10)
	}
}

// TestKernelPoolTelemetry checks the dispatch counter and worker gauge
// record through a live registry.
func TestKernelPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	p := NewPool(4)
	defer p.Close()
	p.Do(8, func(int) {})
	if got := reg.CounterValue(telemetry.MetricPoolDispatchTotal, ""); got != 1 {
		t.Errorf("dispatch counter = %d, want 1", got)
	}
	if got := reg.GaugeValue(telemetry.MetricPoolWorkers, ""); got != 4 {
		t.Errorf("worker gauge = %v, want 4", got)
	}
	// Utilization is a fraction; trailing workers may still be publishing
	// their decrement when Do returns, so only the range is asserted.
	if got := reg.GaugeValue(telemetry.MetricPoolUtilization, ""); got < 0 || got > 1 {
		t.Errorf("utilization gauge = %v, want within [0,1]", got)
	}
	// Inline paths (n==1, single-worker pools) never count a dispatch.
	p.Do(1, func(int) {})
	p1 := NewPool(1)
	defer p1.Close()
	p1.Do(8, func(int) {})
	if got := reg.CounterValue(telemetry.MetricPoolDispatchTotal, ""); got != 1 {
		t.Errorf("dispatch counter after inline runs = %d, want 1", got)
	}
}

// TestKernelPoolSizing covers SetPoolSize/PoolSize/EnvWorkers resolution,
// including the strict rejection of invalid SIMQUERY_WORKERS values.
func TestKernelPoolSizing(t *testing.T) {
	defer SetPoolSize(runtime.GOMAXPROCS(0))
	if got, err := SetPoolSize(3); err != nil || got != 3 {
		t.Fatalf("SetPoolSize(3) = %d, %v", got, err)
	}
	if got := PoolSize(); got != 3 {
		t.Fatalf("PoolSize() = %d, want 3", got)
	}
	t.Setenv("SIMQUERY_WORKERS", "5")
	if got, err := EnvWorkers(); err != nil || got != 5 {
		t.Fatalf("EnvWorkers with SIMQUERY_WORKERS=5 = %d, %v", got, err)
	}
	if got, err := SetPoolSize(0); err != nil || got != 5 {
		t.Fatalf("SetPoolSize(0) under SIMQUERY_WORKERS=5 = %d, %v", got, err)
	}
	for _, junk := range []string{"banana", "0", "-3", "2.5", ""} {
		t.Setenv("SIMQUERY_WORKERS", junk)
		if junk == "" {
			// Unset/empty is not an error: GOMAXPROCS default.
			if got, err := EnvWorkers(); err != nil || got < 1 {
				t.Fatalf("EnvWorkers with empty env = %d, %v", got, err)
			}
			continue
		}
		got, err := EnvWorkers()
		if err == nil {
			t.Fatalf("EnvWorkers with SIMQUERY_WORKERS=%q: want error", junk)
		}
		if got < 1 {
			t.Fatalf("EnvWorkers fallback with SIMQUERY_WORKERS=%q = %d, want ≥ 1", junk, got)
		}
		before := PoolSize()
		if _, err := SetPoolSize(0); err == nil {
			t.Fatalf("SetPoolSize(0) with SIMQUERY_WORKERS=%q: want error", junk)
		}
		if PoolSize() != before {
			t.Fatalf("SetPoolSize with invalid env replaced the pool (size %d -> %d)", before, PoolSize())
		}
	}
}
