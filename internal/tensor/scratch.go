package tensor

// Scratch is an arena of reusable matrix buffers for allocation-free hot
// paths. Take hands out a zeroed matrix backed by a recycled buffer; Reset
// rewinds the arena so the same buffers are reused by the next call.
//
// Ownership rule: a matrix obtained from Take is valid until the next
// Reset of the same Scratch. Callers that keep results across Reset must
// copy them out first. A Scratch is NOT safe for concurrent use — each
// goroutine owns its own (the nn package pools them per inference call).
//
// The zero value is ready to use. A nil *Scratch is also legal: Take then
// falls back to a fresh allocation, so cold paths need no special-casing.
type Scratch struct {
	mats []*Matrix
	next int
}

// Take returns a zeroed rows×cols matrix backed by the arena. Both the
// matrix header and its buffer are recycled across Resets (buffers grow to
// the high-water mark of each call position), so a steady-state caller that
// issues the same Take sequence between Resets performs no allocations.
func (s *Scratch) Take(rows, cols int) *Matrix {
	if s == nil {
		return NewMatrix(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic("tensor: invalid scratch matrix shape")
	}
	n := rows * cols
	if s.next == len(s.mats) {
		s.mats = append(s.mats, &Matrix{})
	}
	m := s.mats[s.next]
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	for i := range m.Data {
		m.Data[i] = 0
	}
	m.Rows, m.Cols = rows, cols
	s.next++
	return m
}

// Reset rewinds the arena: every buffer handed out since the last Reset
// becomes eligible for reuse, and matrices previously returned by Take are
// invalidated.
func (s *Scratch) Reset() {
	if s != nil {
		s.next = 0
	}
}

// AddRowVec adds v to every row of m in place — the broadcast bias add of
// the inference hot path (no temporary allocation).
func AddRowVec(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec width mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(1, v, m.Row(i))
	}
}
