package tensor

import "testing"

func TestScratchReuse(t *testing.T) {
	var s Scratch
	a := s.Take(2, 3)
	if a.Rows != 2 || a.Cols != 3 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	a.Set(1, 2, 7)
	b := s.Take(4, 4)
	b.Set(0, 0, 1)
	s.Reset()
	a2 := s.Take(2, 3)
	if &a2.Data[0] != &a.Data[0] {
		t.Fatal("scratch did not reuse first buffer after Reset")
	}
	if a2.At(1, 2) != 0 {
		t.Fatal("Take did not zero reused buffer")
	}
	// A larger request at the same position grows the buffer.
	s.Reset()
	big := s.Take(8, 8)
	if len(big.Data) != 64 {
		t.Fatalf("grown buffer len %d", len(big.Data))
	}
	for _, v := range big.Data {
		if v != 0 {
			t.Fatal("grown buffer not zeroed")
		}
	}
}

func TestScratchNil(t *testing.T) {
	var s *Scratch
	m := s.Take(3, 2)
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("nil scratch shape %dx%d", m.Rows, m.Cols)
	}
	s.Reset() // must not panic
}

func TestAddRowVec(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	AddRowVec(m, []float64{10, 20, 30})
	want := []float64{10, 21, 30, 10, 20, 32}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("data[%d] = %v, want %v", i, m.Data[i], v)
		}
	}
}
