// Package tensor provides the dense float64 linear-algebra kernels used by
// the neural-network engine and the clustering substrate. Matrices are
// stored flat in row-major order; all routines are allocation-conscious so
// the training hot loops stay on the fast path.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("tensor: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Dot returns the inner product of equal-length vectors. Four independent
// accumulators keep the FP add chains pipelined; the summation order is
// deterministic but differs from a single-accumulator loop (see NaiveDot
// and the tolerance contract in DESIGN.md §9).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha * x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// AddTo computes dst += src element-wise.
func AddTo(dst, src []float64) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("tensor: addto length mismatch %d vs %d", len(src), len(dst)))
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] += src[i]
	}
}

// Sum returns the sum of the elements of x (four-accumulator order; see
// Dot).
func Sum(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x to unit Euclidean norm in place. Zero vectors are
// left untouched. It reports whether normalization happened.
func Normalize(x []float64) bool {
	n := Norm2(x)
	if n == 0 {
		return false
	}
	Scale(1/n, x)
	return true
}

// MinMax returns the smallest and largest values of x. It panics on empty
// input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("tensor: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the index of the largest element (first on ties). It
// panics on empty input.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties). It
// panics on empty input.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		panic("tensor: ArgMin of empty slice")
	}
	best := 0
	for i, v := range x[1:] {
		if v < x[best] {
			best = i + 1
		}
	}
	return best
}

// Softplus returns log(1+e^x) computed without overflow.
func Softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// Sigmoid returns 1/(1+e^-x) computed without overflow.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// LogSumExp returns log(Σ e^xᵢ) computed stably. It panics on empty input.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		panic("tensor: LogSumExp of empty slice")
	}
	_, hi := MinMax(x)
	var s float64
	for _, v := range x {
		s += math.Exp(v - hi)
	}
	return hi + math.Log(s)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
