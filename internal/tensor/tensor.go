// Package tensor provides the dense float64 linear-algebra kernels used by
// the neural-network engine and the clustering substrate. Matrices are
// stored flat in row-major order; all routines are allocation-conscious so
// the training hot loops stay on the fast path.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("tensor: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes out = a × b. out must be a.Rows × b.Cols and distinct
// from a and b.
func MatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes out = a × bᵀ. out must be a.Rows × b.Rows.
func MatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			out.Data[i*out.Cols+j] = Dot(arow, brow)
		}
	}
}

// MatMulTransA computes out = aᵀ × b. out must be a.Cols × b.Cols.
func MatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha * x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddTo computes dst += src element-wise.
func AddTo(dst, src []float64) {
	Axpy(1, src, dst)
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x to unit Euclidean norm in place. Zero vectors are
// left untouched. It reports whether normalization happened.
func Normalize(x []float64) bool {
	n := Norm2(x)
	if n == 0 {
		return false
	}
	Scale(1/n, x)
	return true
}

// MinMax returns the smallest and largest values of x. It panics on empty
// input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("tensor: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the index of the largest element (first on ties). It
// panics on empty input.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties). It
// panics on empty input.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		panic("tensor: ArgMin of empty slice")
	}
	best := 0
	for i, v := range x[1:] {
		if v < x[best] {
			best = i + 1
		}
	}
	return best
}

// Softplus returns log(1+e^x) computed without overflow.
func Softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// Sigmoid returns 1/(1+e^-x) computed without overflow.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// LogSumExp returns log(Σ e^xᵢ) computed stably. It panics on empty input.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		panic("tensor: LogSumExp of empty slice")
	}
	_, hi := MinMax(x)
	var s float64
	for _, v := range x {
		s += math.Exp(v - hi)
	}
	return hi + math.Log(s)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
