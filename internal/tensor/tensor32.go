package tensor

import "fmt"

// Float32 vector/matrix plane — the mixed-precision inference path
// (DESIGN.md §14). Matrix32 mirrors Matrix with float32 storage: half the
// memory traffic per element, which is where the inference speedup comes
// from (the serving GEMMs are bandwidth-bound at the model sizes in play).
//
// Numerical contract: the float32 kernels do NOT promise the f64 plane's
// bitwise row invariance. They promise a relative-error bound instead —
// property tests hold every kernel within 1e-5 relative of the Naive32
// oracles — which is what frees the pooled path to use per-worker C-panel
// accumulation (gemm32.go) that the f64 contract forbids.

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed rows×cols matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Zero resets all elements to 0.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// ToMatrix widens into a freshly allocated float64 matrix (tests and
// debugging; not a hot path).
func (m *Matrix32) ToMatrix() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// FromMatrix32 narrows a float64 matrix into a fresh Matrix32.
func FromMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Dot32 returns the inner product of equal-length float32 vectors with the
// same four-accumulator order as Dot.
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy32 computes y += alpha * x.
func Axpy32(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// AddTo32 computes dst += src element-wise.
func AddTo32(dst, src []float32) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("tensor: addto length mismatch %d vs %d", len(src), len(dst)))
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] += src[i]
	}
}

// Sum32 returns the sum of the elements of x (four-accumulator order).
func Sum32(x []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

// AddRowVec32 adds v to every row of m in place (the f32 bias broadcast).
func AddRowVec32(m *Matrix32, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec32 width mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		Axpy32(1, v, m.Row(i))
	}
}

// Scratch32 is the float32 arena mirroring Scratch: Take hands out a zeroed
// matrix backed by a recycled buffer, Reset rewinds. The same ownership
// rules apply (valid until the owning Scratch32's next Reset, not safe for
// concurrent use, nil receiver falls back to fresh allocations).
type Scratch32 struct {
	mats []*Matrix32
	next int
}

// Take returns a zeroed rows×cols matrix backed by the arena.
func (s *Scratch32) Take(rows, cols int) *Matrix32 {
	if s == nil {
		return NewMatrix32(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic("tensor: invalid scratch matrix shape")
	}
	n := rows * cols
	if s.next == len(s.mats) {
		s.mats = append(s.mats, &Matrix32{})
	}
	m := s.mats[s.next]
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Data = m.Data[:n]
	for i := range m.Data {
		m.Data[i] = 0
	}
	m.Rows, m.Cols = rows, cols
	s.next++
	return m
}

// Reset rewinds the arena, invalidating matrices handed out since the last
// Reset.
func (s *Scratch32) Reset() {
	if s != nil {
		s.next = 0
	}
}
