package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// kernelTol32 is the f32 kernel gate: every tiled/pooled kernel must stay
// within 1e-5 of the Naive32 oracle, measured relative to the
// condition-aware scale Σ|a||b| per element (so mixed-sign cancellation
// can't turn benign last-bit noise into a spurious relative blowup, while
// any real accumulation bug — a dropped k term, a double-counted panel —
// still lands orders of magnitude above the gate).
const kernelTol32 = 1e-5

func randMatrix32(rng *rand.Rand, rows, cols int) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return m
}

// absScale32 returns |a|×|b| (element-wise absolute operands): the per-
// element magnitude scale of the product's accumulation.
func absScale32(a, b *Matrix32) *Matrix32 {
	aa := NewMatrix32(a.Rows, a.Cols)
	for i, v := range a.Data {
		aa.Data[i] = float32(math.Abs(float64(v)))
	}
	bb := NewMatrix32(b.Rows, b.Cols)
	for i, v := range b.Data {
		bb.Data[i] = float32(math.Abs(float64(v)))
	}
	out := NewMatrix32(a.Rows, b.Cols)
	NaiveMatMul32(out, aa, bb)
	return out
}

// checkRel32 fails if any element of got differs from want by more than
// kernelTol32 relative to the accumulation scale.
func checkRel32(t *testing.T, kernel string, got, want, scale *Matrix32) {
	t.Helper()
	for i := range got.Data {
		s := float64(scale.Data[i])
		if s < 1 {
			s = 1
		}
		if d := math.Abs(float64(got.Data[i]) - float64(want.Data[i])); d > kernelTol32*s {
			t.Fatalf("%s: elem %d diff %g > %g (rel %g)", kernel, i, d, kernelTol32*s, d/s)
			return
		}
	}
}

// forceParallelism raises GOMAXPROCS and the pool size so gemmParallelism()
// sees real parallelism even on a single-core host, and restores both on
// cleanup. The pooled paths still execute correctly with one core (the pool
// is caller-participating); only the speedup needs real cores.
func forceParallelism(t *testing.T, workers int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(workers)
	SetPoolSize(workers)
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prev)
		SetPoolSize(0)
	})
}

// TestKernelMatMul32MatchesNaive validates the f32 tiled kernels against
// the Naive32 oracles at 1e-5 rel over every tile/fringe shape, serial and
// forced multi-worker.
func TestKernelMatMul32MatchesNaive(t *testing.T) {
	for _, workers := range []int{1, 4} {
		forceParallelism(t, workers)
		for _, s := range kernelShapes {
			t.Run(fmt.Sprintf("w%d/%dx%dx%d", workers, s.m, s.k, s.n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(s.m*1000 + s.k*100 + s.n)))
				a := randMatrix32(rng, s.m, s.k)
				b := randMatrix32(rng, s.k, s.n)
				bt := randMatrix32(rng, s.n, s.k)
				scale := absScale32(a, b)

				got := NewMatrix32(s.m, s.n)
				want := NewMatrix32(s.m, s.n)
				MatMul32(got, a, b)
				NaiveMatMul32(want, a, b)
				checkRel32(t, "MatMul32", got, want, scale)

				MatMulTransB32(got, a, bt)
				NaiveMatMulTransB32(want, a, bt)
				btT := NewMatrix32(s.k, s.n)
				for i := 0; i < s.n; i++ {
					for k := 0; k < s.k; k++ {
						btT.Set(k, i, bt.At(i, k))
					}
				}
				checkRel32(t, "MatMulTransB32", got, want, absScale32(a, btT))
			})
		}
	}
}

// TestKernelMatMul32PooledPaths drives the big-shape pooled entries — the
// coarse row split at 512³ (4 blocks ≥ 128 rows each) and the per-worker
// C-panel K-split at 256³ (row-starved at the coarse grain) — against the
// oracle, under forced 4-way parallelism.
func TestKernelMatMul32PooledPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("large GEMM shapes")
	}
	forceParallelism(t, 4)
	for _, dim := range []int{256, 320} {
		t.Run(fmt.Sprintf("%d", dim), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(dim)))
			a := randMatrix32(rng, dim, dim)
			b := randMatrix32(rng, dim, dim)
			if !gemmParallel32(dim, dim, dim) {
				t.Fatalf("expected %d^3 to take the pooled path", dim)
			}
			got := NewMatrix32(dim, dim)
			want := NewMatrix32(dim, dim)
			MatMul32(got, a, b)
			NaiveMatMul32(want, a, b)
			checkRel32(t, "MatMul32", got, want, absScale32(a, b))
		})
	}
}

// TestKernelCPanelSplit32 pins the K-split schedule itself: correct vs the
// oracle at several task counts, and bitwise deterministic across repeat
// runs at a fixed pool size (the fold order is a function of (K, tasks)
// only).
func TestKernelCPanelSplit32(t *testing.T) {
	forceParallelism(t, 4)
	rng := rand.New(rand.NewSource(77))
	const m, k, n = 96, 520, 70 // K spans 5 panels; rows below the coarse grain
	a := randMatrix32(rng, m, k)
	b := randMatrix32(rng, k, n)
	want := NewMatrix32(m, n)
	NaiveMatMul32(want, a, b)
	scale := absScale32(a, b)
	var first []float32
	for _, par := range []int{2, 3, 4} {
		got := NewMatrix32(m, n)
		cPanelSplit32(got, k, par, func(panel *Matrix32, k0, k1 int) {
			matMulKPanel32(panel, a, b, 0, m, k0, k1)
		})
		checkRel32(t, fmt.Sprintf("cPanelSplit32/par=%d", par), got, want, scale)
		if par == 4 {
			first = append([]float32(nil), got.Data...)
		}
	}
	again := NewMatrix32(m, n)
	cPanelSplit32(again, k, 4, func(panel *Matrix32, k0, k1 int) {
		matMulKPanel32(panel, a, b, 0, m, k0, k1)
	})
	for i := range again.Data {
		if again.Data[i] != first[i] {
			t.Fatalf("K-split not deterministic at fixed par: elem %d %v vs %v",
				i, again.Data[i], first[i])
		}
	}
}

// TestKernelVector32Ops checks the f32 vector kernels against scalar
// references.
func TestKernelVector32Ops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 129} {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Float64()*2 - 1)
			y[i] = float32(rng.Float64()*2 - 1)
		}

		var dotWant, sumWant float64
		for i := range x {
			dotWant += float64(x[i]) * float64(y[i])
			sumWant += float64(x[i])
		}
		if d := math.Abs(float64(Dot32(x, y)) - dotWant); d > 1e-4 {
			t.Fatalf("Dot32 n=%d diff %g", n, d)
		}
		if d := math.Abs(float64(Sum32(x)) - sumWant); d > 1e-4 {
			t.Fatalf("Sum32 n=%d diff %g", n, d)
		}

		yc := append([]float32(nil), y...)
		Axpy32(0.5, x, yc)
		for i := range yc {
			want := y[i] + 0.5*x[i]
			if d := math.Abs(float64(yc[i]) - float64(want)); d > 1e-5 {
				t.Fatalf("Axpy32 n=%d elem %d diff %g", n, i, d)
			}
		}

		dst := append([]float32(nil), y...)
		AddTo32(dst, x)
		for i := range dst {
			if dst[i] != y[i]+x[i] {
				t.Fatalf("AddTo32 n=%d elem %d got %v want %v", n, i, dst[i], y[i]+x[i])
			}
		}
	}
}

// TestKernelScratch32 pins the arena contract: zeroed handouts, buffer
// reuse across Reset, nil-receiver fallback.
func TestKernelScratch32(t *testing.T) {
	var s Scratch32
	m1 := s.Take(3, 4)
	for i := range m1.Data {
		m1.Data[i] = 7
	}
	m2 := s.Take(2, 2)
	if m2.Rows != 2 || m2.Cols != 2 {
		t.Fatalf("Take shape: got %dx%d", m2.Rows, m2.Cols)
	}
	s.Reset()
	m3 := s.Take(3, 4)
	if &m3.Data[0] != &m1.Data[0] {
		t.Fatal("Take after Reset should reuse the first buffer")
	}
	for i, v := range m3.Data {
		if v != 0 {
			t.Fatalf("Take returned dirty matrix at %d: %v", i, v)
		}
	}
	var nilS *Scratch32
	m := nilS.Take(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatal("nil Scratch32 Take should allocate")
	}
	nilS.Reset() // must not panic

	rv := NewMatrix32(2, 3)
	AddRowVec32(rv, []float32{1, 2, 3})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if rv.At(i, j) != float32(j+1) {
				t.Fatalf("AddRowVec32 (%d,%d) got %v", i, j, rv.At(i, j))
			}
		}
	}
}

// TestKernelMatrix32Convert round-trips the widen/narrow helpers.
func TestKernelMatrix32Convert(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 4, 6)
	m32 := FromMatrix32(m)
	back := m32.ToMatrix()
	for i := range m.Data {
		if d := math.Abs(back.Data[i] - m.Data[i]); d > 1e-7*math.Abs(m.Data[i])+1e-9 {
			t.Fatalf("round trip elem %d: %v vs %v", i, back.Data[i], m.Data[i])
		}
	}
}
