package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad contents: %+v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows != 0 {
		t.Fatalf("empty input should give empty matrix, got %v %v", m, err)
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	out := NewMatrix(2, 2)
	MatMul(out, a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if out.At(i, j) != want[i][j] {
				t.Fatalf("matmul[%d][%d]=%v want %v", i, j, out.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 5)
	b := NewMatrix(3, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// bT explicit.
	bt := NewMatrix(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := NewMatrix(4, 3)
	MatMul(want, a, bt)
	got := NewMatrix(4, 3)
	MatMulTransB(got, a, b)
	for i := range want.Data {
		if !almostEqual(want.Data[i], got.Data[i], 1e-12) {
			t.Fatalf("mismatch at %d: %v vs %v", i, want.Data[i], got.Data[i])
		}
	}
}

func TestMatMulTransAMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(6, 4)
	b := NewMatrix(6, 3)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	at := NewMatrix(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := NewMatrix(4, 3)
	MatMul(want, at, b)
	got := NewMatrix(4, 3)
	MatMulTransA(got, a, b)
	for i := range want.Data {
		if !almostEqual(want.Data[i], got.Data[i], 1e-12) {
			t.Fatalf("mismatch at %d: %v vs %v", i, want.Data[i], got.Data[i])
		}
	}
}

func TestDotAndAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("dot=%v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("axpy=%v", y)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSumMeanNorm(t *testing.T) {
	x := []float64{3, 4}
	if Sum(x) != 7 || Mean(x) != 3.5 || Norm2(x) != 5 {
		t.Fatalf("sum/mean/norm wrong: %v %v %v", Sum(x), Mean(x), Norm2(x))
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty must be 0")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	if !Normalize(x) {
		t.Fatal("expected normalization")
	}
	if !almostEqual(Norm2(x), 1, 1e-12) {
		t.Fatalf("norm=%v", Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) {
		t.Fatal("zero vector must not normalize")
	}
}

func TestMinMaxArg(t *testing.T) {
	x := []float64{2, -1, 5, 5, -1}
	lo, hi := MinMax(x)
	if lo != -1 || hi != 5 {
		t.Fatalf("minmax=%v,%v", lo, hi)
	}
	if ArgMax(x) != 2 || ArgMin(x) != 1 {
		t.Fatalf("argmax=%d argmin=%d", ArgMax(x), ArgMin(x))
	}
}

func TestSoftplusStable(t *testing.T) {
	if math.IsInf(Softplus(1000), 1) || Softplus(1000) != 1000 {
		t.Fatalf("softplus(1000)=%v", Softplus(1000))
	}
	if Softplus(-1000) != math.Exp(-1000) {
		t.Fatalf("softplus(-1000)=%v", Softplus(-1000))
	}
	if !almostEqual(Softplus(0), math.Log(2), 1e-12) {
		t.Fatalf("softplus(0)=%v", Softplus(0))
	}
}

func TestSigmoidStable(t *testing.T) {
	if Sigmoid(1000) != 1 {
		t.Fatalf("sigmoid(1000)=%v", Sigmoid(1000))
	}
	if Sigmoid(-1000) != 0 {
		t.Fatalf("sigmoid(-1000)=%v", Sigmoid(-1000))
	}
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Fatalf("sigmoid(0)=%v", Sigmoid(0))
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{1000, 1000}
	got := LogSumExp(x)
	want := 1000 + math.Log(2)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("lse=%v want %v", got, want)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}

// Property: sigmoid(x) + sigmoid(-x) == 1 for all finite x.
func TestSigmoidSymmetryProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		// keep magnitude reasonable to avoid denormal noise
		x = math.Mod(x, 100)
		return almostEqual(Sigmoid(x)+Sigmoid(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softplus(x) - softplus(-x) == x (identity from log identities).
func TestSoftplusIdentityProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return almostEqual(Softplus(x)-Softplus(-x), x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(x, x) == Norm2(x)^2.
func TestDotNormProperty(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x = append(x, math.Mod(v, 1e6))
		}
		n := Norm2(x)
		return almostEqual(Dot(x, x), n*n, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	a := NewMatrix(64, 64)
	c := NewMatrix(64, 64)
	out := NewMatrix(64, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, a, c)
	}
}

func TestCloneAndZero(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone must not alias")
	}
	m.Zero()
	if Sum(m.Data) != 0 {
		t.Fatal("zero failed")
	}
}

func TestScaleAddTo(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("scale %v", x)
	}
	y := []float64{1, 1}
	AddTo(y, x)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("addto %v", y)
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMax(nil)
}

func TestLogSumExpEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogSumExp(nil)
}
