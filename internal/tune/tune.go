// Package tune implements the greedy hyperparameter search of §5.2
// (Algorithm 3) for the query-embedding CNN: starting from a small random
// pool of layer configurations, it greedily appends layers, coordinate-
// descending each layer's six hyperparameters
// Θ = {θ_ch, θ_ker, θ_stri, θ_pad, θ_pker, θ_op}, and stops when the
// relative validation-error improvement drops below 2%.
package tune

import (
	"fmt"
	"math"
	"math/rand"

	"simquery/internal/dist"
	"simquery/internal/metrics"
	"simquery/internal/model"
	"simquery/internal/nn"
)

// Objective trains a candidate query-embedding stack and returns its
// validation error (lower is better).
type Objective func(cfgs []model.ConvConfig) (float64, error)

// Ranges is the hyperparameter grid Θ_full (GetConfigs in Algorithm 3).
type Ranges struct {
	Channels []int
	Kernel   []int
	Stride   []int
	Padding  []int
	PoolSize []int
	PoolOps  []nn.PoolOp
}

// DefaultRanges returns a compact grid that keeps the number of training
// trials laptop-sized.
func DefaultRanges() Ranges {
	return Ranges{
		Channels: []int{4, 8, 16},
		Kernel:   []int{2, 3},
		Stride:   []int{1, 2},
		Padding:  []int{0, 1},
		PoolSize: []int{1, 2},
		PoolOps:  []nn.PoolOp{nn.MaxPool, nn.AvgPool, nn.SumPool},
	}
}

// Options controls the greedy search.
type Options struct {
	Ranges Ranges
	// InitCandidates is the size of the random cold-start pool (paper: 3).
	InitCandidates int
	// Tol is the relative-improvement stopping threshold (paper: 0.02).
	Tol float64
	// MaxLayers caps the stack depth as a safety bound.
	MaxLayers int
	Seed      int64
}

func (o *Options) fill() {
	if o.Ranges.Channels == nil {
		o.Ranges = DefaultRanges()
	}
	if o.InitCandidates <= 0 {
		o.InitCandidates = 3
	}
	if o.Tol <= 0 {
		o.Tol = 0.02
	}
	if o.MaxLayers <= 0 {
		o.MaxLayers = 4
	}
}

// randomConfig draws one configuration uniformly from the grid.
func randomConfig(rng *rand.Rand, r Ranges) model.ConvConfig {
	pick := func(xs []int) int { return xs[rng.Intn(len(xs))] }
	return model.ConvConfig{
		Channels: pick(r.Channels),
		Kernel:   pick(r.Kernel),
		Stride:   pick(r.Stride),
		Padding:  pick(r.Padding),
		PoolSize: pick(r.PoolSize),
		Pool:     r.PoolOps[rng.Intn(len(r.PoolOps))],
	}
}

// Greedy runs Algorithm 3 and returns the tuned layer stack and its final
// validation error.
func Greedy(obj Objective, opts Options) ([]model.ConvConfig, float64, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))
	inits := make([]model.ConvConfig, opts.InitCandidates)
	for i := range inits {
		inits[i] = randomConfig(rng, opts.Ranges)
	}

	var stack []model.ConvConfig
	bestErr := math.Inf(1)
	for len(stack) < opts.MaxLayers {
		// SelectBestFrom: best init candidate as the next layer.
		layer, layerErr, err := selectBest(obj, stack, inits)
		if err != nil {
			return nil, 0, err
		}
		// Coordinate-descent refinement of the new layer (Update loop).
		layer, layerErr, err = refine(obj, stack, layer, layerErr, opts)
		if err != nil {
			return nil, 0, err
		}
		// Outer stopping rule: relative improvement ≥ Tol.
		if !improved(bestErr, layerErr, opts.Tol) {
			break
		}
		bestErr = layerErr
		stack = append(stack, layer)
	}
	if len(stack) == 0 {
		// Even a single layer did not beat infinity only if obj failed;
		// fall back to the best init so callers always get a valid stack.
		layer, layerErr, err := selectBest(obj, nil, inits)
		if err != nil {
			return nil, 0, err
		}
		return []model.ConvConfig{layer}, layerErr, nil
	}
	return stack, bestErr, nil
}

// improved reports whether next improves on prev by at least tol
// (relative), handling the infinite cold start.
func improved(prev, next, tol float64) bool {
	if math.IsInf(prev, 1) {
		return !math.IsInf(next, 1)
	}
	if prev <= 0 {
		return next < prev
	}
	return (prev-next)/prev >= tol
}

// selectBest evaluates each candidate appended to the stack and returns the
// winner.
func selectBest(obj Objective, stack []model.ConvConfig, candidates []model.ConvConfig) (model.ConvConfig, float64, error) {
	var best model.ConvConfig
	bestErr := math.Inf(1)
	for _, c := range candidates {
		e, err := obj(appendCopy(stack, c))
		if err != nil {
			return model.ConvConfig{}, 0, fmt.Errorf("tune: candidate %v: %w", c, err)
		}
		if e < bestErr {
			best, bestErr = c, e
		}
	}
	return best, bestErr, nil
}

// refine coordinate-descends the six hyperparameters of the candidate layer
// until the inner 2% stopping rule fires.
func refine(obj Objective, stack []model.ConvConfig, layer model.ConvConfig, layerErr float64, opts Options) (model.ConvConfig, float64, error) {
	for {
		prev := layerErr
		var err error
		layer, layerErr, err = sweepOnce(obj, stack, layer, layerErr, opts.Ranges)
		if err != nil {
			return model.ConvConfig{}, 0, err
		}
		if !improved(prev, layerErr, opts.Tol) {
			return layer, layerErr, nil
		}
	}
}

// sweepOnce tries every value of every hyperparameter in turn, keeping
// improvements.
func sweepOnce(obj Objective, stack []model.ConvConfig, layer model.ConvConfig, layerErr float64, r Ranges) (model.ConvConfig, float64, error) {
	trial := func(c model.ConvConfig) error {
		e, err := obj(appendCopy(stack, c))
		if err != nil {
			return err
		}
		if e < layerErr {
			layer, layerErr = c, e
		}
		return nil
	}
	for _, v := range r.Channels {
		c := layer
		c.Channels = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	for _, v := range r.Kernel {
		c := layer
		c.Kernel = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	for _, v := range r.Stride {
		c := layer
		c.Stride = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	for _, v := range r.Padding {
		c := layer
		c.Padding = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	for _, v := range r.PoolSize {
		c := layer
		c.PoolSize = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	for _, v := range r.PoolOps {
		c := layer
		c.Pool = v
		if err := trial(c); err != nil {
			return layer, layerErr, err
		}
	}
	return layer, layerErr, nil
}

func appendCopy(stack []model.ConvConfig, c model.ConvConfig) []model.ConvConfig {
	out := make([]model.ConvConfig, len(stack)+1)
	copy(out, stack)
	out[len(stack)] = c
	return out
}

// NewQESObjective builds the Algorithm 3 objective: train a QES model with
// the candidate stack on the training subsample (RandomSample(…, 1000) /
// RandomSample(…, 200) in the paper) and return its validation mean
// Q-error.
func NewQESObjective(dim, querySegments int, metric dist.Metric, tauScale float64, arch model.Arch,
	train, validate []model.Sample, trainCfg model.TrainConfig, seed int64) Objective {
	return func(cfgs []model.ConvConfig) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		m, err := model.NewQESModel("tune", rng, dim, querySegments, cfgs, nil,
			metric, tauScale, arch)
		if err != nil {
			return 0, err
		}
		if err := m.Train(train, trainCfg); err != nil {
			return 0, err
		}
		var errs []float64
		for _, s := range validate {
			errs = append(errs, metrics.QError(m.EstimateSearch(s.Q, s.Tau), s.Card))
		}
		return metrics.Summarize(errs).Mean, nil
	}
}

// Subsample draws up to n samples without replacement — the paper's
// RandomSample step.
func Subsample(samples []model.Sample, n int, seed int64) []model.Sample {
	if n >= len(samples) {
		return samples
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(samples))
	out := make([]model.Sample, n)
	for i := 0; i < n; i++ {
		out[i] = samples[perm[i]]
	}
	return out
}
