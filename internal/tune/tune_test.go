package tune

import (
	"fmt"
	"math"
	"testing"

	"simquery/internal/dataset"
	"simquery/internal/model"
	"simquery/internal/nn"
	"simquery/internal/workload"
)

// countingObjective scores configs by a synthetic preference so the greedy
// search's mechanics can be verified without training networks.
func countingObjective(calls *int) Objective {
	return func(cfgs []model.ConvConfig) (float64, error) {
		*calls++
		// Prefers: 2 layers, channels 8, avg pooling.
		err := 10.0
		err -= float64(len(cfgs)) * 2
		if len(cfgs) > 2 {
			err += float64(len(cfgs)-2) * 5
		}
		for _, c := range cfgs {
			if c.Channels == 8 {
				err -= 0.5
			}
			if c.Pool == nn.AvgPool {
				err -= 0.3
			}
		}
		if err < 0.1 {
			err = 0.1
		}
		return err, nil
	}
}

func TestGreedyFindsPreferredShape(t *testing.T) {
	calls := 0
	stack, errVal, err := Greedy(countingObjective(&calls), Options{Seed: 1, MaxLayers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) < 1 {
		t.Fatal("empty stack")
	}
	if len(stack) > 2 {
		t.Fatalf("greedy overgrew to %d layers (err=%v)", len(stack), errVal)
	}
	if calls == 0 {
		t.Fatal("objective never called")
	}
	for _, c := range stack {
		if c.Channels != 8 {
			t.Fatalf("coordinate descent should find channels=8, got %v", stack)
		}
	}
}

func TestGreedyStopsOnNoImprovement(t *testing.T) {
	// Constant objective: one layer, then stop.
	obj := func(cfgs []model.ConvConfig) (float64, error) { return 5, nil }
	stack, errVal, err := Greedy(obj, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 1 || errVal != 5 {
		t.Fatalf("want single fallback layer, got %d (err=%v)", len(stack), errVal)
	}
}

func TestGreedyPropagatesErrors(t *testing.T) {
	obj := func(cfgs []model.ConvConfig) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, _, err := Greedy(obj, Options{Seed: 3}); err == nil {
		t.Fatal("expected error")
	}
}

func TestImproved(t *testing.T) {
	if !improved(math.Inf(1), 10, 0.02) {
		t.Fatal("infinite cold start should improve")
	}
	if improved(10, 9.9, 0.02) {
		t.Fatal("0.1% is not a 2% improvement")
	}
	if !improved(10, 9.5, 0.02) {
		t.Fatal("5% should improve")
	}
}

func TestSubsample(t *testing.T) {
	samples := make([]model.Sample, 50)
	for i := range samples {
		samples[i].Card = float64(i)
	}
	sub := Subsample(samples, 10, 1)
	if len(sub) != 10 {
		t.Fatalf("got %d", len(sub))
	}
	all := Subsample(samples, 100, 1)
	if len(all) != 50 {
		t.Fatal("oversized request should return everything")
	}
}

func TestQESObjectiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ds, err := dataset.Generate(dataset.ImageNET, dataset.Config{N: 800, Clusters: 8, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.BuildSearch(ds, workload.SearchConfig{TrainPoints: 40, TestPoints: 10, ThresholdsPerPoint: 4, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	toSamples := func(qs []workload.Query) []model.Sample {
		out := make([]model.Sample, len(qs))
		for i, q := range qs {
			out[i] = model.Sample{Q: q.Vec, Tau: q.Tau, Card: q.Card}
		}
		return out
	}
	cfg := model.DefaultTrainConfig(63)
	cfg.Epochs = 5
	obj := NewQESObjective(ds.Dim, 8, ds.Metric, ds.TauMax, model.DefaultArch(),
		toSamples(w.Train), toSamples(w.Test), cfg, 64)
	e, err := obj(model.DefaultConvConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || math.IsInf(e, 0) || math.IsNaN(e) {
		t.Fatalf("objective value %v", e)
	}
}
