package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// SaveSearch writes a labeled workload to disk (gob). Exact labeling is the
// expensive part of experiment setup at medium/paper scale (Fig 14's label
// construction time); caching it makes repeated runs cheap.
func SaveSearch(path string, w *SearchWorkload) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return fmt.Errorf("workload: encode: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("workload: mkdir: %w", err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("workload: write %s: %w", path, err)
	}
	return nil
}

// LoadSearch reads a workload saved by SaveSearch. The caller is
// responsible for keying the path on everything that determines labels
// (dataset profile, size, seed, workload config) — a stale cache silently
// yields wrong ground truth.
func LoadSearch(path string) (*SearchWorkload, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read %s: %w", path, err)
	}
	w := &SearchWorkload{}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(w); err != nil {
		return nil, fmt.Errorf("workload: decode %s: %w", path, err)
	}
	return w, nil
}
