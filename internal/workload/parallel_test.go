package workload

import (
	"math/rand"
	"testing"

	"simquery/internal/cluster"
	"simquery/internal/dataset"
)

// trueCardSerial is the reference single-threaded scan.
func trueCardSerial(ds *dataset.Dataset, q []float64, tau float64) float64 {
	var c float64
	for _, v := range ds.Vectors {
		if ds.Distance(q, v) <= tau {
			c++
		}
	}
	return c
}

// TestTrueCardParallelMatchesSerial exercises the chunked parallel scan
// (dataset above the parallel threshold) against the serial reference.
func TestTrueCardParallelMatchesSerial(t *testing.T) {
	ds, err := dataset.Generate(dataset.YouTube, dataset.Config{N: 5000, Clusters: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := ds.Vectors[i*37]
		tau := ds.TauMax * float64(i+1) / 10
		if got, want := TrueCard(ds, q, tau), trueCardSerial(ds, q, tau); got != want {
			t.Fatalf("query %d: parallel %v != serial %v", i, got, want)
		}
	}
}

func TestLabelPairsMatchesTrueCard(t *testing.T) {
	ds := testDataset(t)
	var vecs [][]float64
	var taus []float64
	for i := 0; i < 12; i++ {
		vecs = append(vecs, ds.Vectors[i*13])
		taus = append(taus, ds.TauMax*float64(i+1)/12)
	}
	qs := LabelPairs(ds, vecs, taus, 4)
	if len(qs) != len(vecs) {
		t.Fatalf("%d labeled queries for %d pairs", len(qs), len(vecs))
	}
	for i, q := range qs {
		if q.Tau != taus[i] {
			t.Fatalf("pair %d: tau %v, want %v", i, q.Tau, taus[i])
		}
		if want := trueCardSerial(ds, vecs[i], taus[i]); q.Card != want {
			t.Fatalf("pair %d: card %v, exact %v", i, q.Card, want)
		}
	}
}

func TestJoinSegLabelsMatchesBruteForce(t *testing.T) {
	ds := testDataset(t)
	seg, err := cluster.KMeans(ds.Vectors, 4, cluster.KMeansOptions{}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]float64{ds.Vectors[3], ds.Vectors[77], ds.Vectors[311]}
	tau := ds.TauMax / 2
	got := JoinSegLabels(ds, seg.Assignments, seg.K, vecs, tau, 2)
	for qi, q := range vecs {
		want := make([]float64, seg.K)
		for vi, v := range ds.Vectors {
			if ds.Distance(q, v) <= tau {
				want[seg.Assignments[vi]]++
			}
		}
		for s := range want {
			if got[qi][s] != want[s] {
				t.Fatalf("query %d segment %d: %v, want %v", qi, s, got[qi][s], want[s])
			}
		}
	}
}
