// Package workload builds the training and testing query workloads of §6:
// query points drawn from the dataset, per-query thresholds chosen by
// target selectivity (uniform selectivities for training, geometric for
// testing), exact cardinality labels, per-data-segment labels for the
// global-local framework, and join sets. Labeling is exact (brute force,
// parallel across queries) — it is also how the paper computes ground truth
// and why it reports label-construction time in Fig 14.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"simquery/internal/cluster"
	"simquery/internal/dataset"
	"simquery/internal/dist"
	"simquery/internal/telemetry"
)

// Query is one labeled similarity-search query: a vector, a threshold, the
// true cardinality, and (when segment labels are attached) the true
// cardinality within every data segment.
type Query struct {
	Vec      []float64
	Tau      float64
	Card     float64
	SegCards []float64
}

// SearchWorkload is the labeled train/test split for one dataset.
type SearchWorkload struct {
	Train []Query
	Test  []Query
}

// SearchConfig controls workload construction.
type SearchConfig struct {
	// TrainPoints and TestPoints are the numbers of distinct query points;
	// each point contributes ThresholdsPerPoint labeled queries.
	TrainPoints, TestPoints int
	// ThresholdsPerPoint defaults to 10, as in §6.
	ThresholdsPerPoint int
	// MaxSelectivity caps the target selectivity (default 0.01 — the
	// paper's "selectivities less than 1%" convention).
	MaxSelectivity float64
	// Seed drives query-point and threshold sampling.
	Seed int64
	// Workers bounds labeling parallelism (default GOMAXPROCS).
	Workers int
}

func (c *SearchConfig) fill() error {
	if c.TrainPoints <= 0 || c.TestPoints <= 0 {
		return fmt.Errorf("workload: train/test points must be positive (%d/%d)", c.TrainPoints, c.TestPoints)
	}
	if c.ThresholdsPerPoint <= 0 {
		c.ThresholdsPerPoint = 10
	}
	if c.MaxSelectivity <= 0 || c.MaxSelectivity > 1 {
		c.MaxSelectivity = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// BuildSearch constructs a labeled search workload for the dataset.
func BuildSearch(ds *dataset.Dataset, cfg SearchConfig) (*SearchWorkload, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := ds.Size()
	need := cfg.TrainPoints + cfg.TestPoints
	if need > n {
		return nil, fmt.Errorf("workload: %d query points requested from %d data objects", need, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)
	trainIdx := perm[:cfg.TrainPoints]
	testIdx := perm[cfg.TrainPoints:need]

	// Pre-draw per-point selectivity lists so labeling order doesn't
	// affect determinism.
	trainSels := make([][]float64, len(trainIdx))
	for i := range trainSels {
		trainSels[i] = uniformSelectivities(cfg.ThresholdsPerPoint, cfg.MaxSelectivity)
	}
	testSels := make([][]float64, len(testIdx))
	for i := range testSels {
		testSels[i] = geometricSelectivities(rng, cfg.ThresholdsPerPoint, cfg.MaxSelectivity)
	}

	packed := packIfHamming(ds)
	sp := telemetry.StartStage(telemetry.StageLabelWorkload)
	defer sp.End()
	w := &SearchWorkload{}
	w.Train = labelPoints(ds, packed, trainIdx, trainSels, cfg.Workers)
	w.Test = labelPoints(ds, packed, testIdx, testSels, cfg.Workers)
	return w, nil
}

// packIfHamming bit-packs the dataset for popcount distances when the
// metric allows it; labeling dominates workload-construction time (Fig 14),
// and four of the six dataset profiles are Hamming.
func packIfHamming(ds *dataset.Dataset) []dist.BitVector {
	if ds.Metric != dist.Hamming {
		return nil
	}
	return dist.PackAll(ds.Vectors)
}

// distancesTo fills dists[i] = dis(q, D[i]) using the packed fast path when
// available.
func distancesTo(ds *dataset.Dataset, packed []dist.BitVector, q []float64, dists []float64) {
	if packed != nil {
		qb := dist.PackBits(q)
		for i := range packed {
			dists[i] = dist.HammingBits(qb, packed[i])
		}
		return
	}
	for i, v := range ds.Vectors {
		dists[i] = ds.Distance(q, v)
	}
}

// uniformSelectivities returns t selectivities evenly spaced in (0, max],
// the paper's training-threshold scheme ("uniformly generate 10 thresholds
// from range [0, τ_max] by selectivities", §6).
func uniformSelectivities(t int, max float64) []float64 {
	out := make([]float64, t)
	for i := range out {
		out[i] = max * float64(i+1) / float64(t)
	}
	return out
}

// geometricSelectivities draws t selectivities geometrically biased toward
// low values ("more queries with lower selectivity", §6).
func geometricSelectivities(rng *rand.Rand, t int, max float64) []float64 {
	out := make([]float64, t)
	for i := range out {
		// max · r^k with k geometric-ish via exponent of a uniform draw.
		out[i] = max * math.Pow(0.5, float64(rng.Intn(6))) * (0.2 + 0.8*rng.Float64())
	}
	return out
}

// labelPoints computes exact labels for every (point, selectivity) pair in
// parallel. Each worker computes one distance array per query point and
// derives all of its thresholds from it.
func labelPoints(ds *dataset.Dataset, packed []dist.BitVector, idx []int, sels [][]float64, workers int) []Query {
	sp := telemetry.StartStage(telemetry.StageLabelQueries)
	out := make([]Query, 0, len(idx)*len(sels[0]))
	results := make([][]Query, len(idx))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for pi, p := range idx {
		wg.Add(1)
		go func(pi, p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[pi] = labelOnePoint(ds, packed, ds.Vectors[p], sels[pi])
		}(pi, p)
	}
	wg.Wait()
	for _, qs := range results {
		out = append(out, qs...)
	}
	sp.End()
	telemetry.Default().Count(telemetry.MetricLabeledQueriesTotal, int64(len(out)))
	return out
}

// labelOnePoint computes distances from q to every data object once, then
// derives (τ, card) for each requested selectivity.
func labelOnePoint(ds *dataset.Dataset, packed []dist.BitVector, q []float64, sels []float64) []Query {
	n := ds.Size()
	dists := make([]float64, n)
	distancesTo(ds, packed, q, dists)
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	queries := make([]Query, 0, len(sels))
	for _, sel := range sels {
		rank := int(math.Ceil(sel * float64(n)))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		tau := sorted[rank-1]
		if tau > ds.TauMax {
			tau = ds.TauMax
		}
		card := float64(countLE(sorted, tau))
		queries = append(queries, Query{Vec: q, Tau: tau, Card: card})
	}
	return queries
}

// countLE counts values ≤ tau in an ascending slice.
func countLE(sorted []float64, tau float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > tau })
}

// TrueCard computes the exact cardinality of (q, τ) by brute force,
// scanning dataset chunks in parallel once the dataset is large enough to
// amortize goroutine startup. Counting is exact either way.
func TrueCard(ds *dataset.Dataset, q []float64, tau float64) float64 {
	n := ds.Size()
	workers := runtime.GOMAXPROCS(0)
	const parallelThreshold = 4096
	if n < parallelThreshold || workers < 2 {
		var c float64
		for _, v := range ds.Vectors {
			if ds.Distance(q, v) <= tau {
				c++
			}
		}
		return c
	}
	counts := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var c float64
			for _, v := range ds.Vectors[lo:hi] {
				if ds.Distance(q, v) <= tau {
					c++
				}
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, c := range counts {
		total += c
	}
	return total
}

// LabelPairs exactly labels caller-chosen (vecs[i], taus[i]) pairs with a
// bounded worker pool (workers ≤ 0 means GOMAXPROCS) — the batch form of
// TrueCard for labeling real query logs.
func LabelPairs(ds *dataset.Dataset, vecs [][]float64, taus []float64, workers int) []Query {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := telemetry.StartStage(telemetry.StageLabelQueries)
	defer func() {
		sp.End()
		telemetry.Default().Count(telemetry.MetricLabeledQueriesTotal, int64(len(vecs)))
	}()
	packed := packIfHamming(ds)
	out := make([]Query, len(vecs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range vecs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dists := make([]float64, ds.Size())
			distancesTo(ds, packed, vecs[i], dists)
			var card float64
			for _, d := range dists {
				if d <= taus[i] {
					card++
				}
			}
			out[i] = Query{Vec: vecs[i], Tau: taus[i], Card: card}
		}(i)
	}
	wg.Wait()
	return out
}

// JoinSegLabels computes each query's exact per-segment cardinality at τ
// under the given point-to-segment assignment, parallel across queries —
// the label matrix join fine-tuning consumes (workers ≤ 0 means
// GOMAXPROCS).
func JoinSegLabels(ds *dataset.Dataset, assignments []int, k int, vecs [][]float64, tau float64, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := telemetry.StartStage(telemetry.StageLabelSegments)
	defer sp.End()
	packed := packIfHamming(ds)
	out := make([][]float64, len(vecs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range vecs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dists := make([]float64, ds.Size())
			distancesTo(ds, packed, vecs[i], dists)
			segCards := make([]float64, k)
			for vi, d := range dists {
				if d <= tau {
					segCards[assignments[vi]]++
				}
			}
			out[i] = segCards
		}(i)
	}
	wg.Wait()
	return out
}

// AttachSegmentLabels fills SegCards on every query: the exact per-segment
// cardinality under the given segmentation. It parallelizes across queries.
func AttachSegmentLabels(ds *dataset.Dataset, seg *cluster.Segmentation, queries []Query, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := telemetry.StartStage(telemetry.StageLabelSegments)
	defer sp.End()
	packed := packIfHamming(ds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for qi := range queries {
		wg.Add(1)
		go func(q *Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			segCards := make([]float64, seg.K)
			dists := make([]float64, ds.Size())
			distancesTo(ds, packed, q.Vec, dists)
			for i, d := range dists {
				if d <= q.Tau {
					segCards[seg.Assignments[i]]++
				}
			}
			q.SegCards = segCards
		}(&queries[qi])
	}
	wg.Wait()
}

// ApplyInserts updates the labels of existing queries after newVecs were
// appended to the dataset (data-update experiment, §5.3 / Fig 15). assign
// gives the segment of each new vector; pass nil when segment labels are
// not tracked.
func ApplyInserts(ds *dataset.Dataset, queries []Query, newVecs [][]float64, assign []int) {
	for qi := range queries {
		q := &queries[qi]
		for vi, v := range newVecs {
			if ds.Distance(q.Vec, v) <= q.Tau {
				q.Card++
				if q.SegCards != nil && assign != nil {
					a := assign[vi]
					if a >= 0 && a < len(q.SegCards) {
						q.SegCards[a]++
					}
				}
			}
		}
	}
}

// ApplyDeletes updates labels after vectors were removed from the dataset:
// each removed vector within a query's threshold decrements its cardinality
// (and segment cardinality when tracked). Pass the removed vectors and
// their former segment assignments.
func ApplyDeletes(ds *dataset.Dataset, queries []Query, removedVecs [][]float64, assign []int) {
	for qi := range queries {
		q := &queries[qi]
		for vi, v := range removedVecs {
			if ds.Distance(q.Vec, v) <= q.Tau {
				q.Card--
				if q.Card < 0 {
					q.Card = 0
				}
				if q.SegCards != nil && assign != nil {
					a := assign[vi]
					if a >= 0 && a < len(q.SegCards) && q.SegCards[a] > 0 {
						q.SegCards[a]--
					}
				}
			}
		}
	}
}

// JoinSet is one labeled similarity-join query: a set of query vectors, a
// shared threshold, the exact total pair count, and optional per-query
// per-segment labels.
type JoinSet struct {
	Vecs [][]float64
	Tau  float64
	Card float64
	// PerQueryCards[i] is query i's exact cardinality at Tau.
	PerQueryCards []float64
	// PerQuerySegCards[i][s] is query i's exact cardinality in segment s
	// (filled when a segmentation is supplied).
	PerQuerySegCards [][]float64
}

// JoinConfig controls join-set construction.
type JoinConfig struct {
	// Sets is the number of join sets to build.
	Sets int
	// MinSize and MaxSize bound the query-set size (uniform in
	// [MinSize, MaxSize)).
	MinSize, MaxSize int
	// Thresholds per set (default 1: one labeled JoinSet per (set, τ)).
	Thresholds int
	// MaxSelectivity caps the per-query selectivity used to pick τ.
	MaxSelectivity float64
	Seed           int64
	Workers        int
}

// BuildJoin samples join sets from a pool of query points (dataset member
// vectors), picking thresholds by target selectivity on the first member
// and labeling exactly.
func BuildJoin(ds *dataset.Dataset, seg *cluster.Segmentation, cfg JoinConfig) ([]JoinSet, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sets <= 0 {
		return nil, fmt.Errorf("workload: join sets must be positive")
	}
	if cfg.MinSize <= 0 || cfg.MaxSize <= cfg.MinSize {
		return nil, fmt.Errorf("workload: invalid join size range [%d,%d)", cfg.MinSize, cfg.MaxSize)
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 1
	}
	if cfg.MaxSelectivity <= 0 || cfg.MaxSelectivity > 1 {
		cfg.MaxSelectivity = 0.01
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ds.Size()
	joinPacked := packIfHamming(ds)

	type job struct {
		vecs [][]float64
		taus []float64
	}
	jobs := make([]job, cfg.Sets)
	for s := range jobs {
		size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize)
		vecs := make([][]float64, size)
		for i := range vecs {
			vecs[i] = ds.Vectors[rng.Intn(n)]
		}
		// Thresholds from the selectivity profile of the first member.
		sels := geometricSelectivities(rng, cfg.Thresholds, cfg.MaxSelectivity)
		qs := labelOnePoint(ds, joinPacked, vecs[0], sels)
		taus := make([]float64, len(qs))
		for i, q := range qs {
			taus[i] = q.Tau
		}
		jobs[s] = job{vecs: vecs, taus: taus}
	}

	var mu sync.Mutex
	var sets []JoinSet
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for _, j := range jobs {
		for _, tau := range j.taus {
			wg.Add(1)
			go func(vecs [][]float64, tau float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				js := labelJoinSet(ds, joinPacked, seg, vecs, tau)
				mu.Lock()
				sets = append(sets, js)
				mu.Unlock()
			}(j.vecs, tau)
		}
	}
	wg.Wait()
	// Deterministic order for reproducibility.
	sort.Slice(sets, func(a, b int) bool {
		if len(sets[a].Vecs) != len(sets[b].Vecs) {
			return len(sets[a].Vecs) < len(sets[b].Vecs)
		}
		return sets[a].Tau < sets[b].Tau
	})
	return sets, nil
}

// labelJoinSet computes exact join labels for one (set, τ).
func labelJoinSet(ds *dataset.Dataset, packed []dist.BitVector, seg *cluster.Segmentation, vecs [][]float64, tau float64) JoinSet {
	js := JoinSet{
		Vecs:          vecs,
		Tau:           tau,
		PerQueryCards: make([]float64, len(vecs)),
	}
	if seg != nil {
		js.PerQuerySegCards = make([][]float64, len(vecs))
	}
	dists := make([]float64, ds.Size())
	for qi, q := range vecs {
		var segCards []float64
		if seg != nil {
			segCards = make([]float64, seg.K)
		}
		var card float64
		distancesTo(ds, packed, q, dists)
		for i, d := range dists {
			if d <= tau {
				card++
				if segCards != nil {
					segCards[seg.Assignments[i]]++
				}
			}
		}
		js.PerQueryCards[qi] = card
		js.Card += card
		if seg != nil {
			js.PerQuerySegCards[qi] = segCards
		}
	}
	return js
}
