package workload

import (
	"math/rand"
	"testing"

	"simquery/internal/cluster"
	"simquery/internal/dataset"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.YouTube, dataset.Config{N: 600, Clusters: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildSearchShapesAndLabels(t *testing.T) {
	ds := testDataset(t)
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 20, TestPoints: 5, ThresholdsPerPoint: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Train) != 80 || len(w.Test) != 20 {
		t.Fatalf("sizes %d/%d", len(w.Train), len(w.Test))
	}
	for i, q := range append(w.Train, w.Test...) {
		if q.Tau < 0 || q.Tau > ds.TauMax {
			t.Fatalf("query %d tau out of range: %v", i, q.Tau)
		}
		want := TrueCard(ds, q.Vec, q.Tau)
		if q.Card != want {
			t.Fatalf("query %d card %v, exact %v", i, q.Card, want)
		}
		if q.Card < 1 {
			t.Fatalf("query point must match itself: card=%v", q.Card)
		}
	}
}

func TestBuildSearchSelectivityCap(t *testing.T) {
	ds := testDataset(t)
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 10, TestPoints: 5, MaxSelectivity: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Train selectivities are uniform in (0, 1%]; because τ can clamp at
	// TauMax, allow a small margin.
	for _, q := range w.Train {
		if sel := q.Card / float64(ds.Size()); sel > 0.02 {
			t.Fatalf("train selectivity too high: %v", sel)
		}
	}
}

func TestBuildSearchDeterministic(t *testing.T) {
	ds := testDataset(t)
	cfg := SearchConfig{TrainPoints: 8, TestPoints: 4, Seed: 3}
	a, err := BuildSearch(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSearch(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if a.Train[i].Tau != b.Train[i].Tau || a.Train[i].Card != b.Train[i].Card {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestBuildSearchErrors(t *testing.T) {
	ds := testDataset(t)
	if _, err := BuildSearch(ds, SearchConfig{TrainPoints: 0, TestPoints: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildSearch(ds, SearchConfig{TrainPoints: 10000, TestPoints: 10000}); err == nil {
		t.Fatal("expected error on too many query points")
	}
}

func TestAttachSegmentLabelsSumsToCard(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(4))
	seg, err := cluster.KMeans(ds.Vectors, 6, cluster.KMeansOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 10, TestPoints: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	AttachSegmentLabels(ds, seg, w.Train, 0)
	for i, q := range w.Train {
		if len(q.SegCards) != seg.K {
			t.Fatalf("query %d SegCards len %d", i, len(q.SegCards))
		}
		var sum float64
		for _, c := range q.SegCards {
			sum += c
		}
		if sum != q.Card {
			t.Fatalf("query %d: seg sum %v != card %v", i, sum, q.Card)
		}
	}
}

func TestApplyInserts(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(6))
	seg, err := cluster.KMeans(ds.Vectors, 4, cluster.KMeansOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 6, TestPoints: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	AttachSegmentLabels(ds, seg, w.Train, 0)
	q := &w.Train[0]
	before := q.Card
	// Insert a copy of the query point itself: always within τ.
	newVecs := [][]float64{append([]float64(nil), q.Vec...)}
	assign := []int{seg.NearestSegment(q.Vec)}
	ApplyInserts(ds, w.Train[:1], newVecs, assign)
	if q.Card != before+1 {
		t.Fatalf("card %v, want %v", q.Card, before+1)
	}
	var sum float64
	for _, c := range q.SegCards {
		sum += c
	}
	if sum != q.Card {
		t.Fatalf("seg labels out of sync: %v vs %v", sum, q.Card)
	}
}

func TestApplyDeletes(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(16))
	seg, err := cluster.KMeans(ds.Vectors, 4, cluster.KMeansOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 6, TestPoints: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	AttachSegmentLabels(ds, seg, w.Train, 0)
	q := &w.Train[3]
	before := q.Card
	// Delete a copy of the query point: always within τ.
	removed := [][]float64{append([]float64(nil), q.Vec...)}
	assign := []int{seg.NearestSegment(q.Vec)}
	ApplyDeletes(ds, w.Train[3:4], removed, assign)
	if q.Card != before-1 {
		t.Fatalf("card %v want %v", q.Card, before-1)
	}
	var sum float64
	for _, c := range q.SegCards {
		sum += c
	}
	if sum != q.Card {
		t.Fatalf("seg labels out of sync after delete: %v vs %v", sum, q.Card)
	}
}

func TestApplyDeletesClampsAtZero(t *testing.T) {
	ds := testDataset(t)
	q := Query{Vec: ds.Vectors[0], Tau: ds.TauMax, Card: 0}
	ApplyDeletes(ds, []Query{q}, [][]float64{ds.Vectors[1]}, nil)
	// Card must not go negative even if labels were stale.
}

func TestBuildJoinLabels(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(8))
	seg, err := cluster.KMeans(ds.Vectors, 4, cluster.KMeansOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := BuildJoin(ds, seg, JoinConfig{Sets: 3, MinSize: 5, MaxSize: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("got %d sets", len(sets))
	}
	for _, js := range sets {
		if len(js.Vecs) < 5 || len(js.Vecs) >= 10 {
			t.Fatalf("set size %d outside [5,10)", len(js.Vecs))
		}
		var sum float64
		for qi, pc := range js.PerQueryCards {
			sum += pc
			want := TrueCard(ds, js.Vecs[qi], js.Tau)
			if pc != want {
				t.Fatalf("per-query card %v, exact %v", pc, want)
			}
			var segSum float64
			for _, c := range js.PerQuerySegCards[qi] {
				segSum += c
			}
			if segSum != pc {
				t.Fatalf("per-query seg sum %v != %v", segSum, pc)
			}
		}
		if sum != js.Card {
			t.Fatalf("join card %v != per-query sum %v", js.Card, sum)
		}
	}
}

func TestBuildJoinWithoutSegmentation(t *testing.T) {
	ds := testDataset(t)
	sets, err := BuildJoin(ds, nil, JoinConfig{Sets: 2, MinSize: 3, MaxSize: 6, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range sets {
		if js.PerQuerySegCards != nil {
			t.Fatal("seg cards should be nil without segmentation")
		}
	}
}

func TestBuildJoinErrors(t *testing.T) {
	ds := testDataset(t)
	if _, err := BuildJoin(ds, nil, JoinConfig{Sets: 0, MinSize: 1, MaxSize: 2}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildJoin(ds, nil, JoinConfig{Sets: 1, MinSize: 5, MaxSize: 5}); err == nil {
		t.Fatal("expected error on empty size range")
	}
}

func TestGeometricSelectivitiesSkewLow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	low := 0
	n := 2000
	for i := 0; i < n; i++ {
		s := geometricSelectivities(rng, 1, 0.01)[0]
		if s < 0.002 {
			low++
		}
		if s <= 0 || s > 0.01 {
			t.Fatalf("selectivity %v out of range", s)
		}
	}
	if float64(low)/float64(n) < 0.4 {
		t.Fatalf("geometric selectivities should skew low, got %d/%d below 0.002", low, n)
	}
}

func TestUniformSelectivities(t *testing.T) {
	s := uniformSelectivities(4, 0.01)
	want := []float64{0.0025, 0.005, 0.0075, 0.01}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v", s)
		}
	}
	if one := uniformSelectivities(1, 0.01); one[0] != 0.01 {
		t.Fatalf("single selectivity %v", one)
	}
}

func TestSaveLoadSearchRoundTrip(t *testing.T) {
	ds := testDataset(t)
	w, err := BuildSearch(ds, SearchConfig{TrainPoints: 6, TestPoints: 3, ThresholdsPerPoint: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sub/wl.gob"
	if err := SaveSearch(path, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSearch(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Train) != len(w.Train) || len(loaded.Test) != len(w.Test) {
		t.Fatal("sizes changed")
	}
	for i := range w.Train {
		if loaded.Train[i].Tau != w.Train[i].Tau || loaded.Train[i].Card != w.Train[i].Card {
			t.Fatalf("query %d changed in round trip", i)
		}
	}
}

func TestLoadSearchMissing(t *testing.T) {
	if _, err := LoadSearch("/nonexistent/w.gob"); err == nil {
		t.Fatal("expected error")
	}
}
