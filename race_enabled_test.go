//go:build race

package main

// raceEnabled reports whether this test binary was built with the race
// detector. Latency-ordering claim tests skip under race: instrumentation
// overhead is not uniform across algorithms (pointer-heavy NN inference
// pays more than sampling's flat scans), so wall-clock orderings measured
// under race say nothing about the uninstrumented binary.
const raceEnabled = true
